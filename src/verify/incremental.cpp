#include "verify/incremental.h"

#include <algorithm>

#include "util/combinations.h"

namespace sani::verify {

namespace {

// Bitmap cap: sizes whose rank space exceeds this are not summarized
// (2^27 ranks = 16 MiB per bitmap).  Any scan that actually enumerates
// more combinations than this is far beyond interactive resubmission
// latencies anyway, so the cap almost never binds.
constexpr std::uint64_t kMaxSummaryRanks = std::uint64_t{1} << 27;

constexpr std::uint64_t kSaturated = ~std::uint64_t{0};

std::uint64_t key_of(int k, std::uint64_t rank) {
  return (rank << 6) | static_cast<std::uint64_t>(k);
}

bool bit(const std::vector<std::uint64_t>& words, std::uint64_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

void set_bit(std::vector<std::uint64_t>& words, std::uint64_t i) {
  words[i >> 6] |= std::uint64_t{1} << (i & 63);
}

}  // namespace

SummaryCollector::SummaryCollector(int num_observables, int order)
    : n_(num_observables), order_(order < 0 ? 0 : order) {
  tables_.resize(static_cast<std::size_t>(order_));
  for (int k = 1; k <= order_; ++k) {
    ConeSummary::Table& t = tables_[static_cast<std::size_t>(k - 1)];
    const std::uint64_t ranks = binomial(n_, k);
    if (ranks == kSaturated || ranks > kMaxSummaryRanks) continue;
    t.present = true;
    t.num_ranks = ranks;
    const std::size_t words = static_cast<std::size_t>((ranks + 63) / 64);
    t.checked.assign(words, 0);
    t.passed.assign(words, 0);
  }
}

void SummaryCollector::note(const std::vector<int>& combo, bool passed) {
  const int k = static_cast<int>(combo.size());
  if (k < 1 || k > order_) return;
  ConeSummary::Table& t = tables_[static_cast<std::size_t>(k - 1)];
  if (!t.present) return;
  const std::uint64_t rank = combination_rank(n_, combo);
  set_bit(t.checked, rank);
  if (passed) set_bit(t.passed, rank);
}

void SummaryCollector::note_fail(const std::vector<int>& combo,
                                 const Mask& alpha,
                                 const std::string& reason) {
  note(combo, false);
  const int k = static_cast<int>(combo.size());
  if (k < 1 || k > order_ ||
      !tables_[static_cast<std::size_t>(k - 1)].present)
    return;
  failures_.push_back(ConeSummary::Failure{
      k, combination_rank(n_, combo), alpha, reason});
}

void SummaryCollector::merge_from(const SummaryCollector& other) {
  for (std::size_t i = 0; i < tables_.size() && i < other.tables_.size();
       ++i) {
    ConeSummary::Table& t = tables_[i];
    const ConeSummary::Table& o = other.tables_[i];
    if (!t.present || !o.present) continue;
    for (std::size_t w = 0; w < t.checked.size(); ++w) {
      t.checked[w] |= o.checked[w];
      t.passed[w] |= o.passed[w];
    }
  }
  failures_.insert(failures_.end(), other.failures_.begin(),
                   other.failures_.end());
}

ConeSummary make_summary(const Basis& basis, const VerifyOptions& options,
                         SummaryCollector&& collector,
                         const QInfoStore& deps) {
  ConeSummary s;
  s.notion = options.notion;
  s.glitch_robust = options.probes.glitch_robust;
  s.joint_share_count = options.joint_share_count;
  s.union_check = options.union_check;
  s.order = collector.order_;
  s.num_secrets = static_cast<std::uint32_t>(basis.vars.secret_vars.size());
  s.varmap = basis.cones.varmap;
  s.digests = basis.cones.digests;
  s.tables = std::move(collector.tables_);
  s.failures = std::move(collector.failures_);
  std::sort(s.failures.begin(), s.failures.end(),
            [](const ConeSummary::Failure& a, const ConeSummary::Failure& b) {
              return a.k != b.k ? a.k < b.k : a.rank < b.rank;
            });
  const int n = static_cast<int>(s.digests.size());
  for (const std::vector<int>& combo : deps.sorted_combos()) {
    const QInfo* info = deps.find(combo);
    if (!info) continue;
    s.deps.push_back(ConeSummary::DepEntry{
        static_cast<std::int32_t>(combo.size()),
        combination_rank(n, combo), info->V});
  }
  std::sort(s.deps.begin(), s.deps.end(),
            [](const ConeSummary::DepEntry& a, const ConeSummary::DepEntry& b) {
              return a.k != b.k ? a.k < b.k : a.rank < b.rank;
            });
  return s;
}

std::uint64_t summary_checked_count(const ConeSummary& summary) {
  std::uint64_t total = 0;
  for (const ConeSummary::Table& t : summary.tables) {
    if (!t.present) continue;
    for (const std::uint64_t word : t.checked)
      total += static_cast<std::uint64_t>(__builtin_popcountll(word));
  }
  return total;
}

std::optional<IncrementalPlan> IncrementalPlan::build(
    const Basis& basis, std::shared_ptr<const ConeSummary> summary,
    const VerifyOptions& options) {
  if (!summary || !basis.cones.available) return std::nullopt;
  if (summary->varmap != basis.cones.varmap) return std::nullopt;
  if (summary->notion != options.notion) return std::nullopt;
  if (summary->glitch_robust != options.probes.glitch_robust)
    return std::nullopt;
  if (summary->joint_share_count != options.joint_share_count)
    return std::nullopt;
  if (summary->num_secrets != basis.vars.secret_vars.size())
    return std::nullopt;

  IncrementalPlan plan;
  plan.summary_ = std::move(summary);
  const ConeSummary& s = *plan.summary_;
  plan.old_n_ = static_cast<int>(s.digests.size());
  plan.need_deps_ =
      options.union_check && options.notion != Notion::kProbing;
  // A union-checking run can only replay passes whose dependency masks were
  // recorded; a summary from a union-free run still replays failures and
  // dirties the passes (handled per combination below).

  std::unordered_map<circuit::ConeDigest, std::int32_t,
                     circuit::ConeDigestHash>
      by_digest;
  by_digest.reserve(s.digests.size());
  for (std::size_t i = 0; i < s.digests.size(); ++i)
    by_digest.emplace(s.digests[i], static_cast<std::int32_t>(i));

  plan.old_index_.reserve(basis.cones.digests.size());
  for (const circuit::ConeDigest& d : basis.cones.digests) {
    const auto it = by_digest.find(d);
    if (it == by_digest.end()) {
      plan.old_index_.push_back(-1);
    } else {
      plan.old_index_.push_back(it->second);
      ++plan.cones_reused_;
    }
  }

  for (const ConeSummary::Failure& f : s.failures)
    plan.failures_.emplace(key_of(f.k, f.rank), &f);
  for (const ConeSummary::DepEntry& d : s.deps)
    plan.deps_.emplace(key_of(d.k, d.rank), &d);
  return plan;
}

IncrementalPlan::Classification IncrementalPlan::classify(
    const std::vector<int>& combo, std::vector<int>& scratch) const {
  Classification c;
  scratch.clear();
  for (int i : combo) {
    const std::int32_t old = old_index_[static_cast<std::size_t>(i)];
    if (old < 0) return c;
    scratch.push_back(old);
  }
  std::sort(scratch.begin(), scratch.end());
  // Distinct new observables can share a digest when dedupe is off; such a
  // combination has no old counterpart of the same size — re-check it.
  if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end())
    return c;
  const int k = static_cast<int>(scratch.size());
  if (k < 1 || k > summary_->order) return c;
  const ConeSummary::Table& t =
      summary_->tables[static_cast<std::size_t>(k - 1)];
  if (!t.present) return c;
  const std::uint64_t rank = combination_rank(old_n_, scratch);
  if (rank >= t.num_ranks || !bit(t.checked, rank)) return c;
  if (bit(t.passed, rank)) {
    if (need_deps_) {
      const auto it = deps_.find(key_of(k, rank));
      if (it == deps_.end()) return c;  // no recorded masks — re-check
      c.V = &it->second->V;
    }
    c.kind = Kind::kCleanPass;
    return c;
  }
  const auto it = failures_.find(key_of(k, rank));
  if (it == failures_.end()) return c;  // checked-and-failed but no witness
  c.fail = it->second;
  c.kind = Kind::kCleanFail;
  return c;
}

}  // namespace sani::verify
