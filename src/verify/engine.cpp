#include "verify/engine.h"

#include <stdexcept>
#include <utility>

#include "verify/driver.h"
#include "verify/parallel.h"

namespace sani::verify {

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options) {
  if (options.order < 1)
    throw std::invalid_argument("verify: order must be >= 1");
  Driver driver(unfolded, observables, options);
  return driver.run();
}

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options,
                             const PrepareFn& replay) {
  if (options.jobs != 1 && replay) {
    if (options.order < 1)
      throw std::invalid_argument("verify: order must be >= 1");
    return verify_parallel(replay, options);
  }
  return verify_prepared(unfolded, observables, options);
}

VerifyResult verify(const circuit::Gadget& gadget,
                    const VerifyOptions& options) {
  if (options.jobs != 1) {
    if (options.order < 1)
      throw std::invalid_argument("verify: order must be >= 1");
    // Each worker replays the unfolding into a private manager; the
    // managers' GC/reordering safe points are single-threaded by design.
    return verify_parallel(
        [&gadget, options]() {
          PreparedInput input;
          input.unfolded =
              circuit::unfold(gadget, options.cache_bits, options.var_order);
          if (options.sift_after_unfold)
            input.unfolded.manager->reorder_sift();
          input.observables =
              build_observables(gadget, input.unfolded, options.probes);
          return input;
        },
        options);
  }
  circuit::Unfolded unfolded =
      circuit::unfold(gadget, options.cache_bits, options.var_order);
  if (options.sift_after_unfold) unfolded.manager->reorder_sift();
  ObservableSet obs = build_observables(gadget, unfolded, options.probes);
  return verify_prepared(unfolded, obs, options);
}

}  // namespace sani::verify
