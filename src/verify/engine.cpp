#include "verify/engine.h"

#include <stdexcept>
#include <utility>

#include "obs/progress.h"
#include "sched/cancel.h"
#include "util/combinations.h"
#include "verify/driver.h"
#include "verify/parallel.h"

namespace sani::verify {

VerifyResult verify_basis(std::shared_ptr<const Basis> basis,
                          const VerifyOptions& options,
                          sched::CancelToken* cancel) {
  if (options.order < 1)
    throw std::invalid_argument("verify: order must be >= 1");
  if (options.jobs != 1) {
    // The Basis is manager-independent for every engine (the ADD engines'
    // diagram material is frozen inside it), so a pre-built — or
    // deserialized — Basis is no obstacle to parallel execution.
    return verify_parallel_basis(std::move(basis), options, cancel);
  }
  // The Driver arms the time-limit deadline only on its *internal* token;
  // an external token carries the caller's cancel signal and needs the
  // deadline armed here.
  if (cancel && options.time_limit > 0)
    cancel->set_deadline_after(options.time_limit);
  Driver driver(basis, options, cancel);
  driver.count_basis_build();
  if (options.progress)
    options.progress->start(count_combinations_up_to(
        static_cast<int>(basis->size()), options.order));
  VerifyResult result = driver.run();
  if (options.progress) options.progress->stop();
  return result;
}

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options) {
  if (options.order < 1)
    throw std::invalid_argument("verify: order must be >= 1");
  return verify_basis(build_basis(unfolded, observables, options.engine),
                      options);
}

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options,
                             const PrepareFn& /*replay*/) {
  return verify_prepared(unfolded, observables, options);
}

VerifyResult verify(const circuit::Gadget& gadget,
                    const VerifyOptions& options) {
  circuit::Unfolded unfolded =
      circuit::unfold(gadget, options.cache_bits, options.var_order);
  if (options.sift_after_unfold) unfolded.manager->reorder_sift();
  ObservableSet obs = build_observables(gadget, unfolded, options.probes);
  return verify_prepared(unfolded, obs, options);
}

}  // namespace sani::verify
