#include "verify/engine.h"

#include <stdexcept>
#include <utility>

#include "obs/progress.h"
#include "sched/cancel.h"
#include "util/combinations.h"
#include "verify/driver.h"
#include "verify/incremental.h"
#include "verify/parallel.h"
#include "verify/portfolio.h"

namespace sani::verify {

VerifyResult verify_basis(std::shared_ptr<const Basis> basis,
                          const VerifyOptions& options,
                          sched::CancelToken* cancel,
                          const IncrementalContext* ctx) {
  if (options.order < 1)
    throw std::invalid_argument("verify: order must be >= 1");
  if (options.engine == EngineKind::kAuto) {
    // Resolve the portfolio choice before any engine-dependent construction:
    // the Driver holds the options by reference and the backend registry has
    // no kAuto entry, so an unresolved kAuto must never reach either.
    PortfolioStats pstats;
    const VerifyOptions resolved = resolve_portfolio(*basis, options, &pstats);
    VerifyResult result =
        verify_basis(std::move(basis), resolved, cancel, ctx);
    result.stats.portfolio = pstats;
    return result;
  }
  if (options.jobs != 1) {
    // The Basis is manager-independent for every engine (the ADD engines'
    // diagram material is frozen inside it), so a pre-built — or
    // deserialized — Basis is no obstacle to parallel execution.
    return verify_parallel_basis(std::move(basis), options, cancel, ctx);
  }
  // The Driver arms the time-limit deadline only on its *internal* token;
  // an external token carries the caller's cancel signal and needs the
  // deadline armed here.
  if (cancel && options.time_limit > 0)
    cancel->set_deadline_after(options.time_limit);
  Driver driver(basis, options, cancel);
  if (ctx)
    driver.set_incremental(ctx->plan, ctx->collector);
  driver.count_basis_build();
  if (options.progress)
    options.progress->start(count_combinations_up_to(
        static_cast<int>(basis->size()), options.order));
  VerifyResult result = driver.run();
  if (options.progress) options.progress->stop();
  if (ctx && ctx->deps_out) ctx->deps_out->merge_from(driver.qinfo());
  return result;
}

VerifyResult verify_basis(std::shared_ptr<const Basis> basis,
                          const VerifyOptions& options,
                          sched::CancelToken* cancel) {
  return verify_basis(std::move(basis), options, cancel, nullptr);
}

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options) {
  if (options.order < 1)
    throw std::invalid_argument("verify: order must be >= 1");
  return verify_basis(build_basis(unfolded, observables, options.engine),
                      options);
}

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options,
                             const PrepareFn& /*replay*/) {
  return verify_prepared(unfolded, observables, options);
}

VerifyResult verify(const circuit::Gadget& gadget,
                    const VerifyOptions& options) {
  // Under the portfolio the unfolding manager is right-sized too — before a
  // Basis exists, from netlist structure alone.  Forced engines keep the
  // configured size (the baseline columns stay comparable).
  const int unfold_bits =
      options.engine == EngineKind::kAuto
          ? suggest_unfold_cache_bits(gadget, options.cache_bits)
          : options.cache_bits;
  circuit::Unfolded unfolded =
      circuit::unfold(gadget, unfold_bits, options.var_order);
  if (options.sift_after_unfold) unfolded.manager->reorder_sift();
  ObservableSet obs = build_observables(gadget, unfolded, options.probes);
  return verify_prepared(unfolded, obs, options);
}

}  // namespace sani::verify
