#include "verify/engine.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "verify/backends/registry.h"
#include "verify/driver.h"
#include "verify/parallel.h"

namespace sani::verify {

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options) {
  if (options.order < 1)
    throw std::invalid_argument("verify: order must be >= 1");
  const BackendInfo& info = backend_info(options.engine);

  if (options.jobs != 1 && !info.needs_manager) {
    // Scan engines are manager-independent once the Basis is built, so a
    // pre-built unfolding is no obstacle to parallel execution.
    return verify_parallel_basis(
        build_basis(unfolded, observables, options.engine), options);
  }

  std::shared_ptr<const Basis> basis =
      build_basis(unfolded, observables, options.engine);
  Driver driver(basis, options, nullptr, unfolded.manager.get(),
                &observables);
  driver.count_basis_build();
  VerifyResult result = driver.run();
  if (options.jobs != 1) {
    // ADD engines need one manager replica per worker, and a pre-built
    // manager cannot be shared across threads; say so instead of silently
    // running serial.
    result.warnings.push_back(
        std::string("--jobs ignored: engine ") + info.name +
        " verifies on decision diagrams and needs per-worker manager "
        "replicas; use verify() or the replay overload of verify_prepared()");
  }
  return result;
}

VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options,
                             const PrepareFn& replay) {
  if (options.jobs != 1 && replay) {
    if (options.order < 1)
      throw std::invalid_argument("verify: order must be >= 1");
    return verify_parallel(replay, options);
  }
  return verify_prepared(unfolded, observables, options);
}

VerifyResult verify(const circuit::Gadget& gadget,
                    const VerifyOptions& options) {
  if (options.jobs != 1) {
    if (options.order < 1)
      throw std::invalid_argument("verify: order must be >= 1");
    // The runtime replays the unfolding per worker only when the engine
    // verifies on decision diagrams; the scan engines share one Basis.
    return verify_parallel(
        [&gadget, options]() {
          PreparedInput input;
          input.unfolded =
              circuit::unfold(gadget, options.cache_bits, options.var_order);
          if (options.sift_after_unfold)
            input.unfolded.manager->reorder_sift();
          input.observables =
              build_observables(gadget, input.unfolded, options.probes);
          return input;
        },
        options);
  }
  circuit::Unfolded unfolded =
      circuit::unfold(gadget, options.cache_bits, options.var_order);
  if (options.sift_after_unfold) unfolded.manager->reorder_sift();
  ObservableSet obs = build_observables(gadget, unfolded, options.probes);
  return verify_prepared(unfolded, obs, options);
}

}  // namespace sani::verify
