#pragma once
// Sharded parallel verification (VerifyOptions::jobs != 1).
//
// The combination space is embarrassingly parallel — the paper's cost model
// is dominated by the C(|Q|, d) per-combination checks — but the dd::Manager
// is not: garbage collection and reordering run at single-threaded safe
// points.  The runtime therefore replays the gadget's unfolding once per
// worker (PrepareFn), shards the combination space by lexicographic rank
// (sched::plan_shards), executes shards on a work-stealing pool
// (sched::Pool), and merges failures deterministically: the reported
// counterexample is the smallest failing combination in the serial engine's
// search order, independent of thread count and completion order.  A shared
// sched::CancelToken propagates the first counterexample and the
// --time-limit deadline cooperatively.

#include <functional>

#include "circuit/unfold.h"
#include "verify/observables.h"
#include "verify/types.h"

namespace sani::verify {

/// A per-worker replica of the verification input: a private manager with
/// the unfolding replayed into it, plus the observable universe built over
/// it.  Every PrepareFn call must yield the same universe (same names, same
/// order, same functions) — the replicas differ only in which manager owns
/// the nodes.
struct PreparedInput {
  circuit::Unfolded unfolded;
  ObservableSet observables;
};

/// Invoked once per worker, on the worker's own thread (and once on the
/// calling thread to size the probe space).
using PrepareFn = std::function<PreparedInput()>;

/// Runs the sharded parallel verification.  `options.jobs` selects the
/// worker count (0 = hardware concurrency); jobs == 1 still goes through
/// the runtime with a single worker.
VerifyResult verify_parallel(const PrepareFn& prepare,
                             const VerifyOptions& options);

}  // namespace sani::verify
