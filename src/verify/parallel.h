#pragma once
// Sharded parallel verification (VerifyOptions::jobs != 1).
//
// The combination space is embarrassingly parallel — the paper's cost model
// is dominated by the C(|Q|, d) per-combination checks.  Every engine
// shares exactly one prepared input: an immutable verify::Basis, built once
// on the calling thread and read by every worker.  The scan engines (LIL,
// MAP) need nothing else.  The ADD engines (MAPI, FUJITA) verify on
// decision diagrams, and the dd::Manager's GC/reordering safe points are
// single-threaded — so each worker's Driver owns a private manager and
// *thaws* the Basis' frozen forest into it on startup
// (dd::Manager::import_forest, O(nodes)).  No worker ever replays the
// gadget's unfolding: ParallelStats::shared_basis is true and
// WorkerStats::replays is 0 for every engine.
//
// Shards are contiguous lexicographic rank ranges (sched::plan_shards)
// executed on a work-stealing pool (sched::Pool); failures merge
// deterministically: the reported counterexample is the smallest failing
// combination in the serial engine's search order, independent of thread
// count and completion order.  A shared sched::CancelToken propagates the
// first counterexample and the --time-limit deadline cooperatively.

#include <functional>
#include <memory>

#include "circuit/unfold.h"
#include "verify/basis.h"
#include "verify/observables.h"
#include "verify/types.h"

namespace sani::sched {
class CancelToken;
}

namespace sani::verify {

/// The manager-bound front half of the pipeline: an unfolding plus the
/// observable universe built over it.  Only needed to *build* the Basis;
/// workers never see it.
struct PreparedInput {
  circuit::Unfolded unfolded;
  ObservableSet observables;
};

/// Invoked exactly once, on the calling thread, to size the probe space and
/// build the shared Basis.  (Historically the ADD engines re-invoked this
/// per worker to replay private manager replicas; the frozen Basis made
/// that obsolete.)
using PrepareFn = std::function<PreparedInput()>;

/// Runs the sharded parallel verification.  `options.jobs` selects the
/// worker count (0 = hardware concurrency; the resolved count is recorded
/// in ParallelStats::jobs); jobs == 1 still goes through the runtime with a
/// single worker.
VerifyResult verify_parallel(const PrepareFn& prepare,
                             const VerifyOptions& options);

/// Runs the sharded parallel verification directly over a prepared shared
/// Basis — valid for every engine: the Basis carries the frozen forest the
/// ADD-engine workers thaw, so no unfolding happens here at all.  `cancel`
/// optionally substitutes an external token for the run's shared one (the
/// daemon's per-request cancellation); the time-limit deadline is armed on
/// whichever token the run uses.
VerifyResult verify_parallel_basis(std::shared_ptr<const Basis> basis,
                                   const VerifyOptions& options,
                                   sched::CancelToken* cancel = nullptr);

struct IncrementalContext;

/// Same, with the diff-aware incremental hooks (verify/incremental.h)
/// threaded through: every worker's Driver replays against ctx->plan (the
/// plan is immutable and shared without locks) and records outcomes into a
/// per-worker collector; the controller merges the collectors into
/// ctx->collector and the union-check stores into ctx->deps_out.  The
/// deterministic witness merge is untouched — clean combinations are
/// skipped inside their shard, so the rank space and the merge order stay
/// those of a cold run.
VerifyResult verify_parallel_basis(std::shared_ptr<const Basis> basis,
                                   const VerifyOptions& options,
                                   sched::CancelToken* cancel,
                                   const IncrementalContext* ctx);

}  // namespace sani::verify
