#pragma once
// Sharded parallel verification (VerifyOptions::jobs != 1).
//
// The combination space is embarrassingly parallel — the paper's cost model
// is dominated by the C(|Q|, d) per-combination checks.  What the workers
// share depends on the engine's registry entry:
//
//  * Scan engines (LIL, MAP; needs_manager == false): the whole prepared
//    input is one immutable verify::Basis of plain spectra, built once and
//    shared read-only by every worker.  No per-worker unfolding replays
//    happen at all (ParallelStats::shared_basis, WorkerStats::replays).
//  * ADD engines (MAPI, FUJITA; needs_manager == true): the convolution
//    side still reads the shared Basis, but the symbolic verification step
//    multiplies against predicate BDDs, and the dd::Manager's GC/reordering
//    safe points are single-threaded — so each worker additionally replays
//    the gadget's unfolding (PrepareFn) into a private manager replica.
//
// Shards are contiguous lexicographic rank ranges (sched::plan_shards)
// executed on a work-stealing pool (sched::Pool); failures merge
// deterministically: the reported counterexample is the smallest failing
// combination in the serial engine's search order, independent of thread
// count and completion order.  A shared sched::CancelToken propagates the
// first counterexample and the --time-limit deadline cooperatively.

#include <functional>
#include <memory>

#include "circuit/unfold.h"
#include "verify/basis.h"
#include "verify/observables.h"
#include "verify/types.h"

namespace sani::verify {

/// A per-worker replica of the manager-bound verification input: a private
/// manager with the unfolding replayed into it, plus the observable
/// universe built over it.  Every PrepareFn call must yield the same
/// universe (same names, same order, same functions) — the replicas differ
/// only in which manager owns the nodes.
struct PreparedInput {
  circuit::Unfolded unfolded;
  ObservableSet observables;
};

/// Invoked once on the calling thread (to size the probe space and build
/// the shared Basis) and, for the ADD engines only, once per additional
/// worker on the worker's own thread.
using PrepareFn = std::function<PreparedInput()>;

/// Runs the sharded parallel verification.  `options.jobs` selects the
/// worker count (0 = hardware concurrency); jobs == 1 still goes through
/// the runtime with a single worker.
VerifyResult verify_parallel(const PrepareFn& prepare,
                             const VerifyOptions& options);

/// Runs the sharded parallel verification directly over a prepared shared
/// Basis — no unfolding, no replays.  Only valid for engines whose registry
/// entry has needs_manager == false (LIL, MAP); this is how the non-replay
/// verify_prepared() overload honors --jobs for the scan engines.
VerifyResult verify_parallel_basis(std::shared_ptr<const Basis> basis,
                                   const VerifyOptions& options);

}  // namespace sani::verify
