#pragma once
// The row-check layer: per-combination security predicates, cached.
//
// A combination's check inputs depend only on its *signature* — the NI/SNI
// share threshold, the internal-probe count and the probed output indices
// (PINI) — not on which observables were combined.  RowCheck therefore
// builds the violation-region BDD (ADD engines) or the materialized
// ForbiddenRegion (scan engines) once per signature and serves every later
// combination with the same signature from a cache; hit/miss counts land in
// VerifyStats::region_cache.

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "circuit/unfold.h"
#include "util/mask.h"
#include "verify/backends/backend.h"
#include "verify/checker.h"
#include "verify/predicate.h"
#include "verify/types.h"

namespace sani::verify {

class RowCheck {
 public:
  /// `preds` is the predicate builder over the engine's manager for the ADD
  /// engines, null for the scan engines (which get ForbiddenRegions over
  /// `vars.share_vars | relevant_publics` instead).  `vars` must outlive
  /// the RowCheck (the driver passes the shared Basis' value copy).
  RowCheck(const circuit::VarMap& vars, Notion notion, bool joint_share_count,
           const Mask& relevant_publics, PredicateBuilder* preds,
           CacheStats* stats);

  const Checker& checker() const { return checker_; }

  /// The check inputs for a combination with composition `row`, cached by
  /// signature.  `coefficients` receives the region's lookup counts.
  RowCheckQuery query(const RowContext& row, std::uint64_t* coefficients);

 private:
  // (threshold, num_internal, output_indices) determines every notion's
  // region: NI/SNI read only the threshold, PINI only the probe/output
  // composition, probing none of them.
  using Key = std::tuple<int, int, std::vector<int>>;
  Key key_of(const RowContext& row) const;

  dd::Bdd build_predicate(const RowContext& row);

  const circuit::VarMap& vars_;
  Checker checker_;
  Mask relevant_publics_;
  PredicateBuilder* preds_;
  CacheStats* stats_;
  std::map<Key, dd::Bdd> predicates_;
  std::map<Key, std::unique_ptr<ForbiddenRegion>> regions_;
};

}  // namespace sani::verify
