#pragma once
// Prepared verification artifacts (the immutable layer of the pipeline).
//
// The Fig. 5 pipeline splits into three layers (see DESIGN.md Sec. 7):
//
//   1. prepared artifacts — this file: the per-observable XOR-subset base
//      spectra and the observable/variable metadata, built ONCE per
//      (gadget, probe model) and immutable afterwards;
//   2. backends (verify/backends/) — per-run mutable row stacks over the
//      prepared data;
//   3. row checks (verify/rowcheck.h) — cached forbidden regions and
//      violation predicates.
//
// The Basis is deliberately manager-independent for EVERY engine: spectra
// are flat sorted (mask, coeff) arrays, the VarMap is a value copy, and the
// decision-diagram material the ADD engines verify against is carried as a
// dd::FrozenForest — a flat, manager-free node array (see dd/freeze.h).
// One Basis is therefore shared read-only across all parallel workers;
// engines whose *verification* step runs on decision diagrams (MAPI,
// FUJITA) thaw the frozen roots into their private manager on startup
// (Manager::import_forest, O(nodes)) instead of replaying the unfolding.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/unfold.h"
#include "dd/bdd.h"
#include "dd/freeze.h"
#include "spectral/flat_spectrum.h"
#include "spectral/lil_spectrum.h"
#include "spectral/spectrum.h"
#include "util/mask.h"
#include "verify/observables.h"
#include "verify/types.h"

namespace sani::verify {

/// Manager-independent description of one observable (everything the
/// enumeration layer needs; the BDD functions stay in ObservableSet).
struct ObservableInfo {
  Observable::Kind kind = Observable::Kind::kProbe;
  std::string name;
  int output_group = -1;
  int output_share_index = -1;
  std::size_t num_subsets = 0;  // 2^m - 1 nonempty XOR-subsets
  /// Union of the member functions' variable supports — a cheap structural
  /// predictor for the portfolio front-end (serialized since SANIBAS v2; on
  /// a v1 load it is recomputed from the spectra when they are present).
  Mask support;
};

/// Which representations the Basis must carry (from the backend registry).
struct BasisNeeds {
  bool spectra = true;          // flat base spectra (LIL/MAP/MAPI)
  bool lil = false;             // sorted-list copies (LIL only)
  bool frozen_fns = false;      // freeze the XOR-subset BDDs (FUJITA)
  bool frozen_spectra = false;  // freeze the base-spectrum ADDs (MAPI)
};

/// The union of every engine's needs — what a Basis built for the kAuto
/// portfolio carries, so whichever engine the cost model picks (now or on a
/// later warm start from the artifact store) runs from the same artifact.
BasisNeeds all_engine_needs();

/// Per-observable structural cone digests (circuit/cone_hash.h) plus the
/// varmap role fingerprint they are relative to.  `available` is false on a
/// Basis deserialized from a pre-v3 SANIBAS artifact, in which case the
/// incremental scan path falls back to a cold run.
struct ConeIndex {
  bool available = false;
  std::vector<circuit::ConeDigest> digests;  // parallel to Basis::obs
  circuit::ConeDigest varmap;
};

/// The per-(gadget, probe model) prepared artifact: for every observable,
/// the Walsh spectra of all nonempty XOR-subsets of its member functions
/// (a single function in the standard model; the glitch-cone tuple in the
/// robust model).  Immutable after build_basis(); shareable across threads.
struct Basis {
  circuit::VarMap vars;    // value copy — no manager reference
  Mask relevant_publics;   // public coordinates some observable touches
  std::vector<ObservableInfo> obs;
  std::size_t num_outputs = 0;

  /// Cone digests for incremental re-verification (verify/incremental.h).
  ConeIndex cones;

  /// flat[i][s] = Walsh spectrum of XOR-subset s of observable i, in the
  /// contiguous coordinate-sorted representation the scan engines convolve
  /// against (spectral/flat_spectrum.h).
  std::vector<std::vector<spectral::FlatSpectrum>> flat;
  /// Sorted-list mirror of `flat` (built only when BasisNeeds::lil).
  std::vector<std::vector<spectral::LilSpectrum>> lil;

  /// Manager-free snapshot of the decision-diagram material the ADD engines
  /// verify against (empty for the scan engines).  Workers thaw it with
  /// dd::Manager::import_forest.
  dd::FrozenForest frozen;
  /// frozen_fn_roots[i][s] = index into frozen.roots of XOR-subset s of
  /// observable i's member-function BDD (built when BasisNeeds::frozen_fns).
  std::vector<std::vector<std::size_t>> frozen_fn_roots;
  /// Same indexing for the base-spectrum ADDs (BasisNeeds::frozen_spectra).
  std::vector<std::vector<std::size_t>> frozen_spectrum_roots;

  /// Total nonzero base coefficients (counted once, at build time).
  std::uint64_t base_coefficients = 0;
  /// Wall-clock cost of the build (the "base" phase, paid once).
  double build_seconds = 0.0;

  std::size_t size() const { return obs.size(); }
};

/// Visits the 2^m - 1 nonempty XOR-subsets of an observable's member
/// functions — the one subset-enumeration loop shared by the basis build
/// and the FUJITA backend's manager-bound base.
template <typename Fn>
void for_each_xor_subset(const Observable& o, dd::Manager& manager, Fn&& fn) {
  const std::size_t m = o.fns.size();
  for (std::size_t sel = 1; sel < (std::size_t{1} << m); ++sel) {
    dd::Bdd x = dd::Bdd::zero(manager);
    for (std::size_t j = 0; j < m; ++j)
      if (sel & (std::size_t{1} << j)) x ^= o.fns[j];
    fn(x);
  }
}

/// Builds the prepared artifact from an unfolded gadget ("base" phase).
std::shared_ptr<const Basis> build_basis(const circuit::Unfolded& unfolded,
                                         const ObservableSet& observables,
                                         const BasisNeeds& needs);

/// Same, with the needs derived from the engine's registry entry.
std::shared_ptr<const Basis> build_basis(const circuit::Unfolded& unfolded,
                                         const ObservableSet& observables,
                                         EngineKind engine);

}  // namespace sani::verify
