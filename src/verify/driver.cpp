#include "verify/driver.h"

#include <stdexcept>

#include "util/combinations.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "verify/backends/backend.h"
#include "verify/backends/registry.h"
#include "verify/partial.h"

namespace sani::verify {

Driver::Driver(std::shared_ptr<const Basis> basis,
               const VerifyOptions& options, sched::CancelToken* cancel)
    : basis_(std::move(basis)),
      options_(options),
      manager_(backend_info(options.engine).needs_thaw
                   ? std::make_unique<dd::Manager>(basis_->vars.num_vars,
                                                   options.cache_bits)
                   : nullptr),
      thawed_(thaw_roots()),
      preds_(manager_ ? std::make_unique<PredicateBuilder>(
                            *manager_, basis_->vars, options.joint_share_count)
                      : nullptr),
      rowcheck_(basis_->vars, options.notion, options.joint_share_count,
                basis_->relevant_publics, preds_.get(),
                &stats_.region_cache),
      qinfo_(static_cast<int>(basis_->size())),
      cancel_(cancel) {
  if (manager_) stats_.timers.add("thaw", thaw_seconds_);
  if (!cancel_) {
    if (options_.time_limit > 0)
      own_cancel_.set_deadline_after(options_.time_limit);
    cancel_ = &own_cancel_;
  }
}

Driver::~Driver() = default;

std::vector<dd::Add> Driver::thaw_roots() {
  std::vector<dd::Add> thawed;
  if (!manager_ || basis_->frozen.empty()) return thawed;
  // Thawing must precede every other node construction so the manager
  // adopts the forest's variable order while still empty (import_forest
  // would otherwise rewrite existing diagrams in place).
  obs::Span span("thaw");
  Stopwatch watch;
  const std::vector<dd::NodeId> roots =
      manager_->import_forest(basis_->frozen);
  // import_forest never crosses a GC safe point; wrapping the roots in
  // handles here makes them GC roots before any later operation can.
  thawed.reserve(roots.size());
  for (dd::NodeId r : roots) thawed.emplace_back(manager_.get(), r);
  thaw_seconds_ = watch.seconds();
  manager_->sample_counters();
  return thawed;
}

void Driver::prepare() {
  if (prepared_) return;
  prepared_ = true;

  const BackendInfo& info = backend_info(options_.engine);
  BackendContext ctx;
  ctx.basis = basis_;
  ctx.manager = manager_.get();
  ctx.thawed = &thawed_;
  if (preds_) ctx.rho_zero = preds_->rho_zero();
  ctx.timers = &stats_.timers;
  ctx.coefficients = &stats_.coefficients;
  ctx.memo_stats = &stats_.prefix_memo;
  ctx.arena_stats = &arena_stats_;
  ctx.memo_capacity = options_.memo_capacity;
  ctx.order = options_.order;
  backend_ = info.make(ctx);
  backend_->prepare();
}

void Driver::count_basis_build() {
  stats_.coefficients += basis_->base_coefficients;
  stats_.timers.add("base", basis_->build_seconds);
}

VerifyResult Driver::run() {
  VerifyResult result;
  prepare();

  {
    obs::Span span("scan");
    if (options_.search_order == SearchOrder::kLargestFirst) {
      largest_first(result);
    } else if (plan_) {
      std::vector<int> combo;
      combo.reserve(static_cast<std::size_t>(options_.order));
      dfs_incremental(0, combo, result);
    } else {
      dfs(0, result);
    }
  }
  if (manager_) manager_->sample_counters();

  if (result.secure && !result.timed_out && options_.union_check &&
      options_.notion != Notion::kProbing) {
    ScopedPhase phase(stats_.timers, "union");
    obs::Span span("union");
    union_pass_over(qinfo_, result);
  }

  stats_.num_observables = basis_->size();
  stats_.qinfo_entries = qinfo_.size();
  stats_.qinfo_peak_bytes = qinfo_.peak_bytes();
  stats_.frozen_nodes = basis_->frozen.node_count();
  stats_.frozen_bytes = basis_->frozen.empty() ? 0 : basis_->frozen.bytes();
  stats_.thaw_seconds = thaw_seconds_;
  const dd::ManagerStats dd = manager_stats();
  stats_.dd_cache_hits = dd.cache_hits;
  stats_.dd_cache_misses = dd.cache_misses;
  stats_.dd_peak_nodes = dd.peak_nodes;
  stats_.dd_cache_bits = manager_ ? manager_->cache_bits() : 0;
  stats_.dd_gc_runs = dd.gc_runs;
  stats_.dd_cache_survived = dd.cache_survived;
  stats_.dd_arena_bytes = manager_ ? manager_->arena_bytes() : 0;
  stats_.arena_convolutions = arena_stats_.convolutions;
  stats_.arena_grows = arena_stats_.grows;
  stats_.arena_peak_bytes = arena_stats_.peak_bytes;
  result.stats = stats_;
  return result;
}

RowContext Driver::context_for(const std::vector<int>& combo) const {
  RowContext row;
  row.num_observables = static_cast<int>(combo.size());
  for (int i : combo) {
    const ObservableInfo& o = basis_->obs[static_cast<std::size_t>(i)];
    if (o.kind == Observable::Kind::kOutput) {
      ++row.num_outputs;
      row.output_indices.insert(o.output_share_index);
    } else {
      ++row.num_internal;
    }
  }
  return row;
}

std::optional<Driver::CheckFailure> Driver::check_current() {
  ++stats_.combinations;
  if (options_.progress) options_.progress->tick();
  std::optional<CheckFailure> failure;
  // Per-rank check latency: only sampled when a metrics export was
  // requested (two clock reads per combination otherwise dominate the
  // cheap low-rank checks).
  auto& metrics = obs::Metrics::instance();
  if (!metrics.enabled()) {
    failure = check_current_impl();
  } else {
    const std::int64_t t0 = obs::Clock::now_ns();
    failure = check_current_impl();
    const std::size_t k = path_.size();
    if (rank_hist_.size() <= k) rank_hist_.resize(k + 1, nullptr);
    if (rank_hist_[k] == nullptr)
      rank_hist_[k] =
          &metrics.histogram("verify.check_ns.k" + std::to_string(k));
    rank_hist_[k]->record(
        static_cast<std::uint64_t>(obs::Clock::now_ns() - t0));
  }
  if (collector_) {
    if (failure)
      collector_->note_fail(path_, failure->alpha, failure->reason);
    else
      collector_->note_pass(path_);
  }
  return failure;
}

std::optional<Driver::CheckFailure> Driver::check_combo(
    const std::vector<int>& combo) {
  if (plan_) {
    const IncrementalPlan::Classification c =
        plan_->classify(combo, plan_scratch_);
    if (c.kind != IncrementalPlan::Kind::kDirty) {
      ++stats_.combinations;
      ++stats_.incremental.combinations_skipped;
      // Register the phase names a real check would have touched (at zero
      // cost) so a fully-replayed run's report keeps the cold run's phase
      // shape — deterministic reports diff byte-clean either way.
      stats_.timers.add("convolution", 0.0);
      stats_.timers.add("verification", 0.0);
      if (options_.progress) options_.progress->tick();
      if (c.kind == IncrementalPlan::Kind::kCleanPass) {
        if (collector_) collector_->note_pass(combo);
        if (c.V) {
          // Splice the replayed dependency masks in, so the union pass
          // consumes exactly the store a cold run would have built.
          QInfo info;
          info.row = context_for(combo);
          info.V = *c.V;
          qinfo_.insert(combo, std::move(info));
        }
        return std::nullopt;
      }
      CheckFailure failure{c.fail->alpha, c.fail->reason};
      if (collector_)
        collector_->note_fail(combo, failure.alpha, failure.reason);
      return failure;
    }
    ++stats_.incremental.combinations_rechecked;
  }
  sync_path(combo);
  return check_current();
}

std::optional<Driver::CheckFailure> Driver::check_current_impl() {
  const RowContext row = context_for_path();
  RowCheckQuery q = rowcheck_.query(row, &stats_.coefficients);

  if (auto alpha = backend_->check_rows(q)) {
    return CheckFailure{*alpha,
                        "nonzero Walsh coefficient in the forbidden region "
                        "(per-row T-predicate check)"};
  }
  if (options_.union_check && options_.notion != Notion::kProbing) {
    QInfo info;
    info.row = row;
    info.V.assign(basis_->vars.secret_vars.size(), Mask{});
    backend_->accumulate_deps(info.V);
    qinfo_.insert(path_, std::move(info));
  }
  return std::nullopt;
}

CounterExample Driver::make_counterexample(const std::vector<int>& combo,
                                           const CheckFailure& failure) const {
  CounterExample ce;
  for (int i : combo)
    ce.observables.push_back(basis_->obs[static_cast<std::size_t>(i)].name);
  ce.alpha = failure.alpha;
  ce.reason = failure.reason;
  return ce;
}

void Driver::sync_path(const std::vector<int>& combo) {
  std::size_t common = 0;
  while (common < path_.size() && common < combo.size() &&
         path_[common] == combo[common])
    ++common;
  while (path_.size() > common) {
    backend_->pop();
    path_.pop_back();
  }
  while (path_.size() < combo.size()) {
    path_.push_back(combo[path_.size()]);
    backend_->push(path_);
  }
}

bool Driver::expired(VerifyResult& result) {
  if (cancel_->stop_requested()) {
    result.timed_out = true;
    cancel_->acknowledge();
    return true;
  }
  return false;
}

void Driver::dfs(int start, VerifyResult& result) {
  if (!result.secure || result.timed_out) return;
  if (static_cast<int>(path_.size()) >= options_.order) return;
  for (int i = start; i < static_cast<int>(basis_->size()); ++i) {
    if (expired(result)) return;
    path_.push_back(i);
    backend_->push(path_);
    const auto failure = check_current();
    if (failure) {
      result.secure = false;
      result.counterexample = make_counterexample(path_, *failure);
    } else {
      dfs(i + 1, result);
    }
    backend_->pop();
    path_.pop_back();
    if (!result.secure || result.timed_out) return;
  }
}

void Driver::dfs_incremental(int start, std::vector<int>& combo,
                             VerifyResult& result) {
  if (!result.secure || result.timed_out) return;
  if (static_cast<int>(combo.size()) >= options_.order) return;
  for (int i = start; i < static_cast<int>(basis_->size()); ++i) {
    if (expired(result)) return;
    combo.push_back(i);
    const auto failure = check_combo(combo);
    if (failure) {
      result.secure = false;
      result.counterexample = make_counterexample(combo, *failure);
    } else {
      dfs_incremental(i + 1, combo, result);
    }
    combo.pop_back();
    if (!result.secure || result.timed_out) return;
  }
}

/// Sec. III-C order: every combination of size d first, then d-1, ...
/// Lexicographically adjacent combinations share convolution prefixes, so
/// the backend stack is diffed rather than rebuilt.
void Driver::largest_first(VerifyResult& result) {
  const int N = static_cast<int>(basis_->size());
  for (int k = options_.order; k >= 1; --k) {
    if (!result.secure || result.timed_out) break;
    CombinationIter it(N, k);
    if (!it.valid()) continue;
    do {
      if (expired(result)) break;
      if (auto failure = check_combo(it.indices())) {
        result.secure = false;
        result.counterexample = make_counterexample(it.indices(), *failure);
        break;
      }
    } while (it.next());
  }
  sync_path({});
}

void Driver::run_shard(
    const sched::Shard& shard,
    const std::function<bool(const std::vector<int>&)>& still_relevant,
    ShardOutcome& out) {
  prepare();
  const int N = static_cast<int>(basis_->size());
  if (shard.k < 1 || shard.k > N || shard.begin >= shard.end) return;

  obs::Span span("scan");
  std::vector<int> combo = unrank_combination(N, shard.k, shard.begin);
  for (std::uint64_t r = shard.begin; r < shard.end; ++r) {
    if (cancel_->expired()) {
      out.timed_out = true;
      cancel_->acknowledge();
      return;
    }
    // A counterexample elsewhere only ends this shard once the combinations
    // still ahead of us are ordered after it — everything ordered before
    // the best failure must be checked, or the merged witness would depend
    // on scheduling.
    if (cancel_->cancelled() && still_relevant && !still_relevant(combo)) {
      out.abandoned = true;
      cancel_->acknowledge();
      return;
    }
    if (auto failure = check_combo(combo)) {
      out.failure = ShardFailure{combo, make_counterexample(combo, *failure)};
      return;
    }
    if (r + 1 < shard.end && !next_combination(combo, N)) break;
  }
}

void Driver::run_shard_partial(
    const sched::Shard& shard,
    const std::function<bool(const std::vector<int>&)>& still_relevant,
    ShardOutcome& out, PartialReport& part) {
  const std::uint64_t combos0 = stats_.combinations;
  const std::uint64_t coeffs0 = stats_.coefficients;
  const CacheStats memo0 = stats_.prefix_memo;
  const CacheStats region0 = stats_.region_cache;
  const double conv0 = stats_.timers.get("convolution");
  const double verif0 = stats_.timers.get("verification");
  const std::size_t qinfo0 = qinfo_.size();

  run_shard(shard, still_relevant, out);

  part.k = shard.k;
  part.begin = shard.begin;
  part.end = shard.end;
  part.combinations = stats_.combinations - combos0;
  part.coefficients = stats_.coefficients - coeffs0;
  part.prefix_memo.hits = stats_.prefix_memo.hits - memo0.hits;
  part.prefix_memo.misses = stats_.prefix_memo.misses - memo0.misses;
  part.region_cache.hits = stats_.region_cache.hits - region0.hits;
  part.region_cache.misses = stats_.region_cache.misses - region0.misses;
  part.convolution_seconds = stats_.timers.get("convolution") - conv0;
  part.verification_seconds = stats_.timers.get("verification") - verif0;
  // Every visited rank bumps `combinations` exactly once (checked or
  // replayed), so the contiguous covered prefix falls out of the delta.
  part.covered_end = shard.begin + part.combinations;
  part.complete = !out.timed_out && !out.abandoned;
  if (out.failure) {
    const int N = static_cast<int>(basis_->size());
    part.has_failure = true;
    part.fail_rank = combination_rank(N, out.failure->combo);
    part.fail_alpha = out.failure->ce.alpha;
    part.fail_reason = out.failure->ce.reason;
  }
  part.deps.reserve(part.deps.size() + (qinfo_.size() - qinfo0));
  qinfo_.drain_tail(qinfo0, [&part](std::uint64_t key, QInfo&& info) {
    PartialReport::Dep dep;
    dep.rank = key >> 6;
    dep.row = std::move(info.row);
    dep.V = std::move(info.V);
    part.deps.push_back(std::move(dep));
  });
}

void Driver::union_pass_over(const QInfoStore& qinfo, VerifyResult& result) {
  union_pass(*basis_, rowcheck_.checker(), qinfo, cancel_, result);
}

std::size_t Driver::peak_nodes() const {
  return manager_ ? manager_->stats().peak_nodes : 0;
}

dd::ManagerStats Driver::manager_stats() const {
  return manager_ ? manager_->stats() : dd::ManagerStats{};
}

int Driver::manager_cache_bits() const {
  return manager_ ? manager_->cache_bits() : 0;
}

std::size_t Driver::manager_arena_bytes() const {
  return manager_ ? manager_->arena_bytes() : 0;
}

}  // namespace sani::verify
