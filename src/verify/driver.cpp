#include "verify/driver.h"

#include <algorithm>
#include <stdexcept>

#include "dd/add.h"
#include "dd/walsh.h"
#include "spectral/lil_spectrum.h"
#include "spectral/spectrum.h"
#include "util/combinations.h"
#include "util/timer.h"

namespace sani::verify {

namespace detail {

using spectral::LilSpectrum;
using spectral::Spectrum;

struct RowCheckQuery {
  const Checker* checker = nullptr;
  const RowContext* row = nullptr;
  dd::Bdd violation_region;                // used by the ADD backends
  const ForbiddenRegion* region = nullptr; // used by the scan backends
  std::uint64_t* coefficients = nullptr;
  PhaseTimers* timers = nullptr;
};

/// Engine-specific representation of the rows at the current combination.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Precomputes per-observable base data ("base" phase).  For a glitch-
  /// extended observable with m member functions this prepares the spectra
  /// of all 2^m - 1 nonempty XOR-subsets; in the standard model m == 1.
  virtual void prepare(const ObservableSet& obs) = 0;

  /// Extends the current combination by observable `i`; the row set becomes
  /// the cross product of previous rows with the observable's subsets.
  virtual void push(int i) = 0;
  virtual void pop() = 0;

  /// Applies the per-row check to every row of the current combination.
  virtual std::optional<Mask> check_rows(const RowCheckQuery& q) = 0;

  /// Unions the rho=0 share supports of the current rows into V (per
  /// secret), for the set-level check.
  virtual void accumulate_deps(std::vector<Mask>& V) = 0;
};

namespace {

// ---------------------------------------------------------------------------
// Hash-map backend (MAP and MAPI)
// ---------------------------------------------------------------------------

class MapBackend : public Backend {
 public:
  MapBackend(dd::Manager& mgr, const circuit::VarMap& vars, bool use_add,
             PhaseTimers& timers, std::uint64_t& coefficients)
      : mgr_(mgr),
        vars_(vars),
        use_add_(use_add),
        timers_(timers),
        coefficients_(coefficients) {}

  void prepare(const ObservableSet& obs) override {
    ScopedPhase phase(timers_, "base");
    for (const auto& o : obs.items) {
      std::vector<Spectrum> subsets;
      const std::size_t m = o.fns.size();
      for (std::size_t sel = 1; sel < (std::size_t{1} << m); ++sel) {
        dd::Bdd x = dd::Bdd::zero(mgr_);
        for (std::size_t j = 0; j < m; ++j)
          if (sel & (std::size_t{1} << j)) x ^= o.fns[j];
        subsets.push_back(Spectrum::from_bdd(x));
        coefficients_ += subsets.back().nonzero_count();
      }
      base_.push_back(std::move(subsets));
    }
    rows_.push_back({Spectrum::constant_zero(vars_.num_vars)});
  }

  void push(int i) override {
    ScopedPhase phase(timers_, "convolution");
    std::vector<Spectrum> next;
    next.reserve(rows_.back().size() * base_[i].size());
    for (const Spectrum& r : rows_.back())
      for (const Spectrum& s : base_[i]) {
        next.push_back(r.convolve(s));
        coefficients_ += next.back().nonzero_count();
      }
    rows_.push_back(std::move(next));
  }

  void pop() override { rows_.pop_back(); }

  std::optional<Mask> check_rows(const RowCheckQuery& q) override {
    ScopedPhase phase(timers_, "verification");
    for (const Spectrum& r : rows_.back()) {
      if (use_add_) {
        // The paper's MAPI step: W as an ADD, multiplied against the
        // violation region T; a nonzero product is a witness.
        dd::Add w = r.to_add(mgr_);
        dd::Bdd hit = w.nonzero() & q.violation_region;
        Mask alpha;
        if (hit.any_sat(&alpha)) return alpha;
      } else {
        // MAP verification = product of W with the materialized relation
        // vector T: every forbidden coordinate is looked up in the hash map.
        if (q.region->empty()) continue;
        Mask witness;
        if (q.region->find_violation(
                [&](const Mask& a) { return r.at(a) != 0; }, &witness,
                q.coefficients))
          return witness;
      }
    }
    return std::nullopt;
  }

  void accumulate_deps(std::vector<Mask>& V) override {
    for (const Spectrum& r : rows_.back())
      for (const auto& [alpha, v] : r.coefficients()) {
        if (alpha.intersects(vars_.random_vars)) continue;
        for (std::size_t i = 0; i < V.size(); ++i)
          V[i] |= alpha & vars_.secret_vars[i];
      }
  }

 private:
  dd::Manager& mgr_;
  const circuit::VarMap& vars_;
  bool use_add_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  std::vector<std::vector<Spectrum>> base_;
  std::vector<std::vector<Spectrum>> rows_;
};

// ---------------------------------------------------------------------------
// List-of-lists backend (LIL)
// ---------------------------------------------------------------------------

class LilBackend : public Backend {
 public:
  LilBackend(dd::Manager& mgr, const circuit::VarMap& vars,
             PhaseTimers& timers, std::uint64_t& coefficients)
      : mgr_(mgr), vars_(vars), timers_(timers), coefficients_(coefficients) {}

  void prepare(const ObservableSet& obs) override {
    ScopedPhase phase(timers_, "base");
    for (const auto& o : obs.items) {
      std::vector<LilSpectrum> subsets;
      const std::size_t m = o.fns.size();
      for (std::size_t sel = 1; sel < (std::size_t{1} << m); ++sel) {
        dd::Bdd x = dd::Bdd::zero(mgr_);
        for (std::size_t j = 0; j < m; ++j)
          if (sel & (std::size_t{1} << j)) x ^= o.fns[j];
        subsets.push_back(LilSpectrum::from_spectrum(Spectrum::from_bdd(x)));
        coefficients_ += subsets.back().nonzero_count();
      }
      base_.push_back(std::move(subsets));
    }
    rows_.push_back({LilSpectrum::from_spectrum(
        Spectrum::constant_zero(vars_.num_vars))});
  }

  void push(int i) override {
    ScopedPhase phase(timers_, "convolution");
    std::vector<LilSpectrum> next;
    next.reserve(rows_.back().size() * base_[i].size());
    for (const LilSpectrum& r : rows_.back())
      for (const LilSpectrum& s : base_[i]) {
        next.push_back(r.convolve(s));
        coefficients_ += next.back().nonzero_count();
      }
    rows_.push_back(std::move(next));
  }

  void pop() override { rows_.pop_back(); }

  std::optional<Mask> check_rows(const RowCheckQuery& q) override {
    ScopedPhase phase(timers_, "verification");
    // LIL verification = product with the materialized relation vector,
    // each forbidden coordinate resolved by binary search in the sorted
    // list (the TCHES'20 baseline's cost model).
    if (q.region->empty()) return std::nullopt;
    for (const LilSpectrum& r : rows_.back()) {
      Mask witness;
      if (q.region->find_violation(
              [&](const Mask& a) { return r.at(a) != 0; }, &witness,
              q.coefficients))
        return witness;
    }
    return std::nullopt;
  }

  void accumulate_deps(std::vector<Mask>& V) override {
    for (const LilSpectrum& r : rows_.back())
      for (const auto& [alpha, v] : r.entries()) {
        if (alpha.intersects(vars_.random_vars)) continue;
        for (std::size_t i = 0; i < V.size(); ++i)
          V[i] |= alpha & vars_.secret_vars[i];
      }
  }

 private:
  dd::Manager& mgr_;
  const circuit::VarMap& vars_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  std::vector<std::vector<LilSpectrum>> base_;
  std::vector<std::vector<LilSpectrum>> rows_;
};

// ---------------------------------------------------------------------------
// Fujita backend: transform the XOR-combination directly
// ---------------------------------------------------------------------------

class FujitaBackend : public Backend {
 public:
  FujitaBackend(dd::Manager& mgr, const circuit::VarMap& vars,
                PhaseTimers& timers, std::uint64_t& coefficients)
      : mgr_(mgr), vars_(vars), timers_(timers), coefficients_(coefficients) {}

  void prepare(const ObservableSet& obs) override {
    ScopedPhase phase(timers_, "base");
    for (const auto& o : obs.items) {
      std::vector<dd::Bdd> subsets;
      const std::size_t m = o.fns.size();
      for (std::size_t sel = 1; sel < (std::size_t{1} << m); ++sel) {
        dd::Bdd x = dd::Bdd::zero(mgr_);
        for (std::size_t j = 0; j < m; ++j)
          if (sel & (std::size_t{1} << j)) x ^= o.fns[j];
        subsets.push_back(x);
      }
      base_.push_back(std::move(subsets));
    }
    rows_.push_back({Row{dd::Bdd::zero(mgr_), dd::Add()}});
  }

  void push(int i) override {
    ScopedPhase phase(timers_, "convolution");
    std::vector<Row> next;
    next.reserve(rows_.back().size() * base_[i].size());
    for (const Row& r : rows_.back())
      for (const dd::Bdd& s : base_[i]) {
        Row row;
        row.fn = r.fn ^ s;
        // The spectral transform replaces the convolution step entirely.
        row.spectrum = dd::walsh_transform(row.fn);
        coefficients_ +=
            static_cast<std::uint64_t>(row.spectrum.nonzero_count());
        next.push_back(std::move(row));
      }
    rows_.push_back(std::move(next));
  }

  void pop() override { rows_.pop_back(); }

  std::optional<Mask> check_rows(const RowCheckQuery& q) override {
    ScopedPhase phase(timers_, "verification");
    for (const Row& r : rows_.back()) {
      dd::Bdd hit = r.spectrum.nonzero() & q.violation_region;
      Mask alpha;
      if (hit.any_sat(&alpha)) return alpha;
    }
    return std::nullopt;
  }

  void accumulate_deps(std::vector<Mask>& V) override {
    dd::Bdd rho0 = rho0_;
    for (const Row& r : rows_.back()) {
      dd::Bdd nz = r.spectrum.nonzero() & rho0;
      vars_.share_vars.for_each_bit([&](int v) {
        if (!dd::Bdd(&mgr_, mgr_.cofactor(nz.node(), v, true)).is_zero()) {
          for (std::size_t i = 0; i < V.size(); ++i)
            if (vars_.secret_vars[i].test(v)) V[i].set(v);
        }
      });
    }
  }

  void set_rho_zero(const dd::Bdd& rho0) { rho0_ = rho0; }

 private:
  struct Row {
    dd::Bdd fn;
    dd::Add spectrum;
  };

  dd::Manager& mgr_;
  const circuit::VarMap& vars_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  dd::Bdd rho0_;
  std::vector<std::vector<dd::Bdd>> base_;
  std::vector<std::vector<Row>> rows_;
};

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

Driver::Driver(const circuit::Unfolded& unfolded, const ObservableSet& obs,
               const VerifyOptions& options, sched::CancelToken* cancel)
    : unfolded_(unfolded),
      obs_(obs),
      options_(options),
      checker_(unfolded.vars, options.notion, options.joint_share_count),
      preds_(*unfolded.manager, unfolded.vars, options.joint_share_count),
      cancel_(cancel) {
  if (!cancel_) {
    if (options_.time_limit > 0)
      own_cancel_.set_deadline_after(options_.time_limit);
    cancel_ = &own_cancel_;
  }
}

Driver::~Driver() = default;

void Driver::prepare() {
  if (prepared_) return;
  prepared_ = true;

  switch (options_.engine) {
    case EngineKind::kMAP:
    case EngineKind::kMAPI:
      backend_ = std::make_unique<detail::MapBackend>(
          *unfolded_.manager, unfolded_.vars,
          options_.engine == EngineKind::kMAPI, stats_.timers,
          stats_.coefficients);
      break;
    case EngineKind::kLIL:
      backend_ = std::make_unique<detail::LilBackend>(
          *unfolded_.manager, unfolded_.vars, stats_.timers,
          stats_.coefficients);
      break;
    case EngineKind::kFUJITA: {
      auto b = std::make_unique<detail::FujitaBackend>(
          *unfolded_.manager, unfolded_.vars, stats_.timers,
          stats_.coefficients);
      b->set_rho_zero(preds_.rho_zero());
      backend_ = std::move(b);
      break;
    }
  }

  // Public coordinates can only appear in spectra if some observable's
  // function touches them; restrict the scan engines' relation vector to
  // that slice.
  Mask used;
  for (const auto& o : obs_.items)
    for (const auto& f : o.fns) used |= f.support();
  relevant_publics_ = used & unfolded_.vars.public_vars;

  backend_->prepare(obs_);
}

VerifyResult Driver::run() {
  VerifyResult result;
  prepare();

  if (options_.search_order == SearchOrder::kLargestFirst)
    largest_first(result);
  else
    dfs(0, result);

  if (result.secure && !result.timed_out && options_.union_check &&
      options_.notion != Notion::kProbing) {
    ScopedPhase phase(stats_.timers, "union");
    union_pass_over(qinfo_, result);
  }

  stats_.num_observables = obs_.size();
  result.stats = stats_;
  return result;
}

RowContext Driver::context_for_path() const {
  RowContext row;
  row.num_observables = static_cast<int>(path_.size());
  for (int i : path_) {
    const Observable& o = obs_.items[i];
    if (o.kind == Observable::Kind::kOutput) {
      ++row.num_outputs;
      row.output_indices.insert(o.output_share_index);
    } else {
      ++row.num_internal;
    }
  }
  return row;
}

dd::Bdd Driver::violation_region(const RowContext& row) {
  switch (options_.notion) {
    case Notion::kNI:
    case Notion::kSNI:
      return preds_.ni_violation(checker_.threshold(row));
    case Notion::kProbing:
      return preds_.probing_violation();
    case Notion::kPINI:
      return preds_.pini_violation(row.output_indices, row.num_internal);
  }
  return preds_.probing_violation();
}

std::optional<Driver::CheckFailure> Driver::check_current() {
  ++stats_.combinations;
  const RowContext row = context_for_path();
  detail::RowCheckQuery q;
  q.checker = &checker_;
  q.row = &row;
  q.coefficients = &stats_.coefficients;
  q.timers = &stats_.timers;
  std::optional<ForbiddenRegion> region;
  if (options_.engine == EngineKind::kMAPI ||
      options_.engine == EngineKind::kFUJITA) {
    q.violation_region = violation_region(row);
  } else {
    region.emplace(checker_, unfolded_.vars, row, relevant_publics_);
    q.region = &*region;
  }

  if (auto alpha = backend_->check_rows(q)) {
    return CheckFailure{*alpha,
                        "nonzero Walsh coefficient in the forbidden region "
                        "(per-row T-predicate check)"};
  }
  if (options_.union_check && options_.notion != Notion::kProbing) {
    QInfo info;
    info.row = row;
    info.V.assign(unfolded_.vars.secret_vars.size(), Mask{});
    backend_->accumulate_deps(info.V);
    qinfo_.emplace(path_, std::move(info));
  }
  return std::nullopt;
}

CounterExample Driver::make_counterexample(const std::vector<int>& combo,
                                           const CheckFailure& failure) const {
  CounterExample ce;
  for (int i : combo) ce.observables.push_back(obs_.items[i].name);
  ce.alpha = failure.alpha;
  ce.reason = failure.reason;
  return ce;
}

void Driver::sync_path(const std::vector<int>& combo) {
  std::size_t common = 0;
  while (common < path_.size() && common < combo.size() &&
         path_[common] == combo[common])
    ++common;
  while (path_.size() > common) {
    backend_->pop();
    path_.pop_back();
  }
  while (path_.size() < combo.size()) {
    const int i = combo[path_.size()];
    backend_->push(i);
    path_.push_back(i);
  }
}

bool Driver::expired(VerifyResult& result) {
  if (cancel_->stop_requested()) {
    result.timed_out = true;
    cancel_->acknowledge();
    return true;
  }
  return false;
}

void Driver::dfs(int start, VerifyResult& result) {
  if (!result.secure || result.timed_out) return;
  if (static_cast<int>(path_.size()) >= options_.order) return;
  for (int i = start; i < static_cast<int>(obs_.size()); ++i) {
    if (expired(result)) return;
    path_.push_back(i);
    backend_->push(i);
    const auto failure = check_current();
    if (failure) {
      result.secure = false;
      result.counterexample = make_counterexample(path_, *failure);
    } else {
      dfs(i + 1, result);
    }
    backend_->pop();
    path_.pop_back();
    if (!result.secure || result.timed_out) return;
  }
}

/// Sec. III-C order: every combination of size d first, then d-1, ...
/// Lexicographically adjacent combinations share convolution prefixes, so
/// the backend stack is diffed rather than rebuilt.
void Driver::largest_first(VerifyResult& result) {
  const int N = static_cast<int>(obs_.size());
  for (int k = options_.order; k >= 1; --k) {
    if (!result.secure || result.timed_out) break;
    CombinationIter it(N, k);
    if (!it.valid()) continue;
    do {
      if (expired(result)) break;
      sync_path(it.indices());
      if (auto failure = check_current()) {
        result.secure = false;
        result.counterexample = make_counterexample(path_, *failure);
        break;
      }
    } while (it.next());
  }
  sync_path({});
}

void Driver::run_shard(
    const sched::Shard& shard,
    const std::function<bool(const std::vector<int>&)>& still_relevant,
    ShardOutcome& out) {
  prepare();
  const int N = static_cast<int>(obs_.size());
  if (shard.k < 1 || shard.k > N || shard.begin >= shard.end) return;

  std::vector<int> combo = unrank_combination(N, shard.k, shard.begin);
  for (std::uint64_t r = shard.begin; r < shard.end; ++r) {
    if (cancel_->expired()) {
      out.timed_out = true;
      cancel_->acknowledge();
      return;
    }
    // A counterexample elsewhere only ends this shard once the combinations
    // still ahead of us are ordered after it — everything ordered before
    // the best failure must be checked, or the merged witness would depend
    // on scheduling.
    if (cancel_->cancelled() && still_relevant && !still_relevant(combo)) {
      out.abandoned = true;
      cancel_->acknowledge();
      return;
    }
    sync_path(combo);
    if (auto failure = check_current()) {
      out.failure = ShardFailure{combo, make_counterexample(combo, *failure)};
      return;
    }
    if (r + 1 < shard.end && !next_combination(combo, N)) break;
  }
}

void Driver::union_pass_over(const QInfoMap& qinfo, VerifyResult& result) {
  for (const auto& [q_path, info] : qinfo) {
    if (cancel_->expired()) {
      result.timed_out = true;
      cancel_->acknowledge();
      return;
    }
    // V(Q) = union of deps over all sub-combinations of Q.
    std::vector<Mask> V(info.V.size());
    const std::size_t k = q_path.size();
    for (std::size_t sel = 1; sel < (std::size_t{1} << k); ++sel) {
      std::vector<int> sub;
      for (std::size_t j = 0; j < k; ++j)
        if (sel & (std::size_t{1} << j)) sub.push_back(q_path[j]);
      auto it = qinfo.find(sub);
      if (it == qinfo.end()) continue;
      for (std::size_t s = 0; s < V.size(); ++s) V[s] |= it->second.V[s];
    }
    std::string reason;
    if (checker_.union_violates(V, info.row, &reason)) {
      result.secure = false;
      CounterExample ce;
      for (int i : q_path) ce.observables.push_back(obs_.items[i].name);
      for (const Mask& v : V) ce.alpha |= v;
      ce.reason = "set-level dependency check failed: " + reason;
      result.counterexample = std::move(ce);
      return;
    }
  }
}

std::size_t Driver::peak_nodes() const {
  return unfolded_.manager->stats().peak_nodes;
}

}  // namespace sani::verify
