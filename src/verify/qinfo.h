#pragma once
// Union-check dependency store (flat arena keyed by combination rank).
//
// The set-level union pass needs, for every passing combination Q, the
// per-secret dependency masks V accumulated from Q's rows.  The naive
// std::map<std::vector<int>, QInfo> pays a node allocation plus a key
// vector per combination; this store keeps the QInfo records in one flat
// arena and keys them by the combination's lexicographic rank in the
// combinatorial number system (rank << 6 | k — k < 64 always holds, the
// enumeration order is bounded far below that), so lookups are one hash
// probe and the footprint is measurable: bytes()/peak_bytes() feed the
// qinfo fields of VerifyStats.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/mask.h"
#include "verify/checker.h"

namespace sani::verify {

/// Per-combination dependency data for the set-level union check.
struct QInfo {
  RowContext row;
  std::vector<Mask> V;  // per-secret deps of rows covering exactly this Q
};

/// Each combination is checked exactly once across all shards, so
/// per-worker stores have disjoint key sets and merge trivially.
class QInfoStore {
 public:
  QInfoStore() = default;
  explicit QInfoStore(int num_observables) : n_(num_observables) {}

  /// Re-keys an empty store for a universe of `num_observables`.
  void reset(int num_observables) {
    n_ = num_observables;
    arena_.clear();
    keys_.clear();
    index_.clear();
    bytes_ = 0;
    peak_bytes_ = 0;
  }

  void insert(const std::vector<int>& combo, QInfo info);

  /// The record of `combo`, or null if it was never inserted.
  const QInfo* find(const std::vector<int>& combo) const;

  std::size_t size() const { return arena_.size(); }

  /// Approximate heap footprint of the arena + index.
  std::size_t bytes() const { return bytes_; }
  std::size_t peak_bytes() const { return peak_bytes_; }

  /// Folds `other`'s records in (disjoint key sets across shards).
  void merge_from(const QInfoStore& other);

  /// Removes every record appended at arena position >= `from`, handing
  /// each (key, record) pair to `fn` in insertion order (key = rank << 6 |
  /// k, see key_of).  The arena is append-only, so the records of one
  /// shard are exactly a tail slice; shard-mode drivers drain it into the
  /// shard's PartialReport without copying (verify/partial.h).
  template <typename Fn>
  void drain_tail(std::size_t from, Fn&& fn) {
    for (std::size_t i = from; i < arena_.size(); ++i) {
      unaccount(arena_[i]);
      index_.erase(keys_[i]);
      fn(keys_[i], std::move(arena_[i]));
    }
    arena_.resize(from);
    keys_.resize(from);
  }

  /// Stored combinations decoded back to index vectors, in lexicographic
  /// vector order — the iteration order of the old per-path std::map, which
  /// the union pass's witness determinism depends on.
  std::vector<std::vector<int>> sorted_combos() const;

 private:
  std::uint64_t key_of(const std::vector<int>& combo) const;
  void account(const QInfo& info);
  void unaccount(const QInfo& info);

  int n_ = 0;
  std::vector<QInfo> arena_;
  std::vector<std::uint64_t> keys_;  // parallel to arena_
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::size_t bytes_ = 0;
  std::size_t peak_bytes_ = 0;
};

}  // namespace sani::verify
