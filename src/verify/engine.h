#pragma once
// The verification driver (Fig. 5 of the paper).
//
// Pipeline: unfold the circuit (probes as BDDs) -> enumerate combinations of
// outputs/probes up to size d -> compute the Walsh spectrum of every
// XOR-combination (convolution of base spectra, or a direct Fujita
// transform) -> test the interference predicate.  Four interchangeable
// engines implement the representation choices compared in Tables I/II:
//
//   LIL    — list-of-lists spectra, list-scan verification  (TCHES'20 [11])
//   MAP    — hash-map spectra, map-scan verification
//   MAPI   — hash-map convolution + ADD verification        (the paper)
//   FUJITA — per-combination Fujita transform + ADD verification
//
// All four return identical verdicts (asserted by the cross-engine tests);
// they differ only in where the time goes, which is exactly what the
// paper's evaluation measures.

#include "circuit/spec.h"
#include "circuit/unfold.h"
#include "verify/observables.h"
#include "verify/parallel.h"
#include "verify/types.h"

namespace sani::sched {
class CancelToken;
}

namespace sani::verify {

/// Unfolds `gadget`, builds the observable universe and decides the notion.
/// With options.jobs != 1 this dispatches to the sharded parallel runtime
/// (verify/parallel.h): same verdict, same witness, N workers.
VerifyResult verify(const circuit::Gadget& gadget, const VerifyOptions& options);

/// Same, over a pre-built unfolding and observable set (used to analyse
/// fixed probe configurations such as the Fig. 1 composition example, and
/// to amortize unfolding across engines in the benchmarks).  Every engine
/// honors options.jobs here: the prepared Basis is manager-independent for
/// all of them — the ADD engines' decision-diagram material travels as a
/// frozen forest that each worker thaws into its private manager.
VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options);

/// Compatibility overload from the replay era: `replay` is ignored — the
/// frozen Basis removed per-worker unfolding replays, so the pre-built
/// input serves every engine at any job count.
VerifyResult verify_prepared(const circuit::Unfolded& unfolded,
                             const ObservableSet& observables,
                             const VerifyOptions& options,
                             const PrepareFn& replay);

/// Runs verification directly over a prepared shared Basis — the bottom
/// half of the pipeline, and the warm-start entry point of the artifact
/// store (src/store): a Basis deserialized from disk goes straight to the
/// Driver (serial) or the sharded parallel runtime.  No parse, unfold,
/// basis_build or freeze happens here; verdict, witness and stats are
/// identical to a cold run over the same Basis content.
///
/// `cancel` optionally supplies an external cancellation token (the sanid
/// daemon cancels abandoned requests through it); when given, the
/// options.time_limit deadline is armed on it, and cancel()ing it stops the
/// run cooperatively at the next combination boundary.  nullptr keeps the
/// engine's internal token (plain CLI behavior).
VerifyResult verify_basis(std::shared_ptr<const Basis> basis,
                          const VerifyOptions& options,
                          sched::CancelToken* cancel = nullptr);

struct IncrementalContext;

/// verify_basis with the diff-aware incremental hooks threaded through to
/// the Driver(s): replay against ctx->plan, record outcomes into
/// ctx->collector, and merge the union-check dependency store into
/// ctx->deps_out (see verify/incremental.h).  ctx == nullptr (or an
/// all-null ctx) is exactly verify_basis above.  The artifact store's
/// verify_with_store is the production caller.
VerifyResult verify_basis(std::shared_ptr<const Basis> basis,
                          const VerifyOptions& options,
                          sched::CancelToken* cancel,
                          const IncrementalContext* ctx);

}  // namespace sani::verify
