#include "verify/backends/registry.h"

#include <stdexcept>

#include "verify/backends/fujita_backend.h"
#include "verify/backends/lil_backend.h"
#include "verify/backends/map_backend.h"

namespace sani::verify {

namespace {

std::unique_ptr<Backend> make_lil(const BackendContext& ctx) {
  return std::make_unique<LilBackend>(ctx);
}

std::unique_ptr<Backend> make_map(const BackendContext& ctx) {
  return std::make_unique<MapBackend>(ctx, /*use_add=*/false);
}

std::unique_ptr<Backend> make_mapi(const BackendContext& ctx) {
  return std::make_unique<MapBackend>(ctx, /*use_add=*/true);
}

std::unique_ptr<Backend> make_fujita(const BackendContext& ctx) {
  return std::make_unique<FujitaBackend>(ctx);
}

}  // namespace

const std::vector<BackendInfo>& backend_registry() {
  static const std::vector<BackendInfo> registry = {
      {EngineKind::kLIL, "lil",
       "list-of-lists convolution + list-scan verification [11]",
       /*needs_thaw=*/false, /*needs_spectra=*/true, /*needs_lil=*/true,
       /*frozen_fns=*/false, /*frozen_spectra=*/false, &make_lil},
      {EngineKind::kMAP, "map",
       "hash-map convolution + map-scan verification",
       /*needs_thaw=*/false, /*needs_spectra=*/true, /*needs_lil=*/false,
       /*frozen_fns=*/false, /*frozen_spectra=*/false, &make_map},
      {EngineKind::kMAPI, "mapi",
       "hash-map convolution + ADD verification (the paper's method)",
       /*needs_thaw=*/true, /*needs_spectra=*/true, /*needs_lil=*/false,
       /*frozen_fns=*/false, /*frozen_spectra=*/true, &make_mapi},
      {EngineKind::kFUJITA, "fujita",
       "per-combination Fujita transform + ADD verification",
       /*needs_thaw=*/true, /*needs_spectra=*/false, /*needs_lil=*/false,
       /*frozen_fns=*/true, /*frozen_spectra=*/false, &make_fujita},
  };
  return registry;
}

const BackendInfo& backend_info(EngineKind kind) {
  for (const BackendInfo& info : backend_registry())
    if (info.kind == kind) return info;
  throw std::logic_error("backend_info: unregistered engine kind");
}

const BackendInfo* backend_by_name(const std::string& name) {
  for (const BackendInfo& info : backend_registry())
    if (name == info.name) return &info;
  return nullptr;
}

std::string backend_name_list() {
  std::string out;
  for (const BackendInfo& info : backend_registry()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

}  // namespace sani::verify
