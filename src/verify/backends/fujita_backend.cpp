#include "verify/backends/fujita_backend.h"

#include "obs/trace.h"

#include <stdexcept>

#include "dd/walsh.h"

namespace sani::verify {

FujitaBackend::FujitaBackend(const BackendContext& ctx)
    : basis_(ctx.basis),
      manager_(ctx.manager),
      thawed_(ctx.thawed),
      rho0_(ctx.rho_zero),
      timers_(*ctx.timers),
      coefficients_(*ctx.coefficients),
      order_(ctx.order),
      memo_(ctx.memo_capacity, ctx.memo_stats) {}

void FujitaBackend::prepare() {
  // The XOR-subset BDDs were frozen at build_basis() time and thawed into
  // this worker's manager by the Driver; indexing the handles is all that
  // is left — no per-worker rebuild.
  if (!thawed_ || basis_->frozen_fn_roots.size() != basis_->size())
    throw std::logic_error(
        "fujita backend: basis has no frozen XOR-subset functions "
        "(rebuild the basis for this engine)");
  base_.reserve(basis_->size());
  for (const std::vector<std::size_t>& roots : basis_->frozen_fn_roots) {
    std::vector<dd::Bdd> subsets;
    subsets.reserve(roots.size());
    for (std::size_t r : roots)
      subsets.emplace_back(manager_, (*thawed_)[r].node());
    base_.push_back(std::move(subsets));
  }
  rows_.push_back(std::make_shared<RowSet>(
      RowSet{Row{dd::Bdd::zero(*manager_), dd::Add()}}));
}

void FujitaBackend::push(const std::vector<int>& path) {
  ScopedPhase phase(timers_, "convolution");
  obs::Span span("convolution");
  const bool memoize = static_cast<int>(path.size()) < order_;
  if (memoize) {
    if (const auto* hit = memo_.find(path)) {
      rows_.push_back(hit->rows);
      coefficients_ += hit->coefficients;
      return;
    }
  }
  const RowSet& cur = *rows_.back();
  const std::vector<dd::Bdd>& base = base_[path.back()];
  auto next = std::make_shared<RowSet>();
  next->reserve(cur.size() * base.size());
  std::uint64_t coeffs = 0;
  for (const Row& r : cur)
    for (const dd::Bdd& s : base) {
      Row row;
      row.fn = r.fn ^ s;
      // The spectral transform replaces the convolution step entirely.
      row.spectrum = dd::walsh_transform(row.fn);
      coeffs += static_cast<std::uint64_t>(row.spectrum.nonzero_count());
      next->push_back(std::move(row));
    }
  coefficients_ += coeffs;
  if (memoize) memo_.insert(path, {next, coeffs});
  rows_.push_back(std::move(next));
}

void FujitaBackend::pop() { rows_.pop_back(); }

std::optional<Mask> FujitaBackend::check_rows(const RowCheckQuery& q) {
  ScopedPhase phase(timers_, "verification");
  obs::Span span("add_check");
  for (const Row& r : *rows_.back()) {
    dd::Bdd hit = r.spectrum.nonzero() & q.violation_region;
    Mask alpha;
    if (hit.any_sat(&alpha)) return alpha;
  }
  return std::nullopt;
}

void FujitaBackend::accumulate_deps(std::vector<Mask>& V) {
  const circuit::VarMap& vars = basis_->vars;
  for (const Row& r : *rows_.back()) {
    dd::Bdd nz = r.spectrum.nonzero() & rho0_;
    vars.share_vars.for_each_bit([&](int v) {
      if (!dd::Bdd(manager_, manager_->cofactor(nz.node(), v, true))
               .is_zero()) {
        for (std::size_t i = 0; i < V.size(); ++i)
          if (vars.secret_vars[i].test(v)) V[i].set(v);
      }
    });
  }
}

}  // namespace sani::verify
