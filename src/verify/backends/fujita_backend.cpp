#include "verify/backends/fujita_backend.h"

#include "dd/walsh.h"

namespace sani::verify {

FujitaBackend::FujitaBackend(const BackendContext& ctx)
    : basis_(ctx.basis),
      manager_(ctx.manager),
      observables_(ctx.observables),
      rho0_(ctx.rho_zero),
      timers_(*ctx.timers),
      coefficients_(*ctx.coefficients),
      order_(ctx.order),
      memo_(ctx.memo_capacity, ctx.memo_stats) {}

void FujitaBackend::prepare() {
  // Manager-bound base: the XOR-subset BDDs live in this worker's manager,
  // so unlike the spectra engines this part is rebuilt per backend.
  ScopedPhase phase(timers_, "base");
  for (const auto& o : observables_->items) {
    std::vector<dd::Bdd> subsets;
    for_each_xor_subset(o, *manager_,
                        [&](const dd::Bdd& x) { subsets.push_back(x); });
    base_.push_back(std::move(subsets));
  }
  rows_.push_back(std::make_shared<RowSet>(
      RowSet{Row{dd::Bdd::zero(*manager_), dd::Add()}}));
}

void FujitaBackend::push(const std::vector<int>& path) {
  ScopedPhase phase(timers_, "convolution");
  const bool memoize = static_cast<int>(path.size()) < order_;
  if (memoize) {
    if (const auto* hit = memo_.find(path)) {
      rows_.push_back(hit->rows);
      coefficients_ += hit->coefficients;
      return;
    }
  }
  const RowSet& cur = *rows_.back();
  const std::vector<dd::Bdd>& base = base_[path.back()];
  auto next = std::make_shared<RowSet>();
  next->reserve(cur.size() * base.size());
  std::uint64_t coeffs = 0;
  for (const Row& r : cur)
    for (const dd::Bdd& s : base) {
      Row row;
      row.fn = r.fn ^ s;
      // The spectral transform replaces the convolution step entirely.
      row.spectrum = dd::walsh_transform(row.fn);
      coeffs += static_cast<std::uint64_t>(row.spectrum.nonzero_count());
      next->push_back(std::move(row));
    }
  coefficients_ += coeffs;
  if (memoize) memo_.insert(path, {next, coeffs});
  rows_.push_back(std::move(next));
}

void FujitaBackend::pop() { rows_.pop_back(); }

std::optional<Mask> FujitaBackend::check_rows(const RowCheckQuery& q) {
  ScopedPhase phase(timers_, "verification");
  for (const Row& r : *rows_.back()) {
    dd::Bdd hit = r.spectrum.nonzero() & q.violation_region;
    Mask alpha;
    if (hit.any_sat(&alpha)) return alpha;
  }
  return std::nullopt;
}

void FujitaBackend::accumulate_deps(std::vector<Mask>& V) {
  const circuit::VarMap& vars = basis_->vars;
  for (const Row& r : *rows_.back()) {
    dd::Bdd nz = r.spectrum.nonzero() & rho0_;
    vars.share_vars.for_each_bit([&](int v) {
      if (!dd::Bdd(manager_, manager_->cofactor(nz.node(), v, true))
               .is_zero()) {
        for (std::size_t i = 0; i < V.size(); ++i)
          if (vars.secret_vars[i].test(v)) V[i].set(v);
      }
    });
  }
}

}  // namespace sani::verify
