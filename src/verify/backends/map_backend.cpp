#include "verify/backends/map_backend.h"

#include "obs/trace.h"

#include "dd/add.h"

namespace sani::verify {

using spectral::Spectrum;

MapBackend::MapBackend(const BackendContext& ctx, bool use_add)
    : basis_(ctx.basis),
      manager_(ctx.manager),
      use_add_(use_add),
      timers_(*ctx.timers),
      coefficients_(*ctx.coefficients),
      order_(ctx.order),
      memo_(ctx.memo_capacity, ctx.memo_stats) {}

void MapBackend::prepare() {
  rows_.push_back(std::make_shared<RowSet>(
      RowSet{Spectrum::constant_zero(basis_->vars.num_vars)}));
}

void MapBackend::push(const std::vector<int>& path) {
  ScopedPhase phase(timers_, "convolution");
  obs::Span span("convolution");
  // Full-depth rows can never be reused as prefixes; keep them out of the
  // memo so its slots hold prefixes only.
  const bool memoize = static_cast<int>(path.size()) < order_;
  if (memoize) {
    if (const auto* hit = memo_.find(path)) {
      rows_.push_back(hit->rows);
      coefficients_ += hit->coefficients;
      return;
    }
  }
  const RowSet& cur = *rows_.back();
  const std::vector<Spectrum>& base = basis_->spectra[path.back()];
  auto next = std::make_shared<RowSet>();
  next->reserve(cur.size() * base.size());
  std::uint64_t coeffs = 0;
  for (const Spectrum& r : cur)
    for (const Spectrum& s : base) {
      next->push_back(r.convolve(s));
      coeffs += next->back().nonzero_count();
    }
  coefficients_ += coeffs;
  if (memoize) memo_.insert(path, {next, coeffs});
  rows_.push_back(std::move(next));
}

void MapBackend::pop() { rows_.pop_back(); }

std::optional<Mask> MapBackend::check_rows(const RowCheckQuery& q) {
  ScopedPhase phase(timers_, "verification");
  obs::Span span("add_check");
  for (const Spectrum& r : *rows_.back()) {
    if (use_add_) {
      // The paper's MAPI step: W as an ADD, multiplied against the
      // violation region T; a nonzero product is a witness.
      dd::Add w = r.to_add(*manager_);
      dd::Bdd hit = w.nonzero() & q.violation_region;
      Mask alpha;
      if (hit.any_sat(&alpha)) return alpha;
    } else {
      // MAP verification = product of W with the materialized relation
      // vector T: every forbidden coordinate is looked up in the hash map.
      if (q.region->empty()) continue;
      Mask witness;
      if (q.region->find_violation(
              [&](const Mask& a) { return r.at(a) != 0; }, &witness,
              q.coefficients))
        return witness;
    }
  }
  return std::nullopt;
}

void MapBackend::accumulate_deps(std::vector<Mask>& V) {
  for (const Spectrum& r : *rows_.back())
    for (const auto& [alpha, v] : r.coefficients()) {
      if (alpha.intersects(basis_->vars.random_vars)) continue;
      for (std::size_t i = 0; i < V.size(); ++i)
        V[i] |= alpha & basis_->vars.secret_vars[i];
    }
}

}  // namespace sani::verify
