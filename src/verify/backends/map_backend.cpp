#include "verify/backends/map_backend.h"

#include "obs/trace.h"

#include "dd/add.h"

namespace sani::verify {

using spectral::FlatRowSet;
using spectral::FlatSpectrum;

MapBackend::MapBackend(const BackendContext& ctx, bool use_add)
    : basis_(ctx.basis),
      manager_(ctx.manager),
      use_add_(use_add),
      timers_(*ctx.timers),
      coefficients_(*ctx.coefficients),
      order_(ctx.order),
      memo_(ctx.memo_capacity, ctx.memo_stats),
      memo_enabled_(ctx.memo_capacity != 0),
      arena_(ctx.arena_stats),
      root_(basis_->vars.num_vars) {}

void MapBackend::prepare() {
  root_.append_row(FlatSpectrum::constant_zero(basis_->vars.num_vars));
  // One reusable slot per stack depth: a push at depth d only ever runs
  // after the previous depth-d level popped, so slot d can be overwritten
  // in place — its capacity survives, which is what makes the steady-state
  // scan allocation-free.
  slots_.reserve(static_cast<std::size_t>(order_) + 1);
  for (int d = 0; d <= order_; ++d) slots_.emplace_back(basis_->vars.num_vars);
  stack_.reserve(static_cast<std::size_t>(order_) + 1);
  stack_.push_back(Level{&root_, nullptr});
}

std::uint64_t MapBackend::build_level(const RowSet& cur,
                                      const std::vector<FlatSpectrum>& base,
                                      RowSet& out) {
  const int num_vars = basis_->vars.num_vars;
  out.reset(num_vars, arena_.stats_ptr());
  for (std::size_t r = 0; r < cur.row_count(); ++r)
    for (const FlatSpectrum& s : base)
      arena_.convolve_row(num_vars, cur.row_masks(r), cur.row_coeffs(r),
                          cur.row_size(r), s.masks().data(), s.coeffs().data(),
                          s.nonzero_count(), out);
  return out.coefficients();
}

void MapBackend::push(const std::vector<int>& path) {
  ScopedPhase phase(timers_, "convolution");
  obs::Span span("convolution");
  // Full-depth rows can never be reused as prefixes; keep them out of the
  // memo so its slots hold prefixes only.
  const bool memoize =
      memo_enabled_ && static_cast<int>(path.size()) < order_;
  if (memoize) {
    if (const auto* hit = memo_.find(path)) {
      stack_.push_back(Level{hit->rows.get(), hit->rows});
      coefficients_ += hit->coefficients;
      return;
    }
  }
  const RowSet& cur = *stack_.back().rows;
  const std::vector<FlatSpectrum>& base = basis_->flat[path.back()];
  if (memoize) {
    // Memo entries must outlive the stack (and this backend's slots), so a
    // memoized prefix gets its own allocation.  Prefix pushes are a
    // vanishing fraction of the scan — the C(n, d) full-depth pushes all go
    // through the reusable slot below.
    auto fresh = std::make_shared<RowSet>(basis_->vars.num_vars);
    const std::uint64_t coeffs = build_level(cur, base, *fresh);
    coefficients_ += coeffs;
    memo_.insert(path, {fresh, coeffs});
    stack_.push_back(Level{fresh.get(), std::move(fresh)});
    return;
  }
  RowSet& slot = slots_[path.size()];
  coefficients_ += build_level(cur, base, slot);
  stack_.push_back(Level{&slot, nullptr});
}

void MapBackend::pop() { stack_.pop_back(); }

std::optional<Mask> MapBackend::check_rows(const RowCheckQuery& q) {
  ScopedPhase phase(timers_, "verification");
  obs::Span span("add_check");
  const RowSet& top = *stack_.back().rows;
  for (std::size_t r = 0; r < top.row_count(); ++r) {
    if (use_add_) {
      // The paper's MAPI step: W as an ADD, multiplied against the
      // violation region T; a nonzero product is a witness.
      dd::Add w = spectral::flat_to_add(
          *manager_, basis_->vars.num_vars, top.row_masks(r),
          top.row_coeffs(r), top.row_size(r), &add_scratch_,
          arena_.stats_ptr());
      dd::Bdd hit = w.nonzero() & q.violation_region;
      Mask alpha;
      if (hit.any_sat(&alpha)) return alpha;
    } else {
      // MAP verification = product of W with the materialized relation
      // vector T: every forbidden coordinate is a binary search in the
      // sorted row.
      if (q.region->empty()) continue;
      const Mask* masks = top.row_masks(r);
      const std::int64_t* coeffs = top.row_coeffs(r);
      const std::size_t n = top.row_size(r);
      Mask witness;
      if (q.region->find_violation(
              [&](const Mask& a) {
                return spectral::flat_at(masks, coeffs, n, a) != 0;
              },
              &witness, q.coefficients))
        return witness;
    }
  }
  return std::nullopt;
}

void MapBackend::accumulate_deps(std::vector<Mask>& V) {
  const RowSet& top = *stack_.back().rows;
  for (std::size_t r = 0; r < top.row_count(); ++r) {
    const Mask* masks = top.row_masks(r);
    const std::size_t n = top.row_size(r);
    for (std::size_t i = 0; i < n; ++i) {
      const Mask& alpha = masks[i];
      if (alpha.intersects(basis_->vars.random_vars)) continue;
      for (std::size_t s = 0; s < V.size(); ++s)
        V[s] |= alpha & basis_->vars.secret_vars[s];
    }
  }
}

}  // namespace sani::verify
