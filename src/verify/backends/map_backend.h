#pragma once
// Hash-map backend (MAP and MAPI engines).
//
// Convolution runs on the shared Basis' hash-map spectra.  Verification is
// either the scan product with the materialized ForbiddenRegion (MAP) or
// the paper's symbolic ADD product (MAPI; needs the manager).  For MAPI the
// Driver has already thawed the Basis' frozen base-spectrum ADDs into the
// manager, so the per-row Spectrum::to_add rebuilds hit a warm unique
// table; the backend itself only needs the manager pointer.

#include "verify/backends/backend.h"
#include "verify/prefix_memo.h"

namespace sani::verify {

class MapBackend : public Backend {
 public:
  MapBackend(const BackendContext& ctx, bool use_add);

  void prepare() override;
  void push(const std::vector<int>& path) override;
  void pop() override;
  std::optional<Mask> check_rows(const RowCheckQuery& q) override;
  void accumulate_deps(std::vector<Mask>& V) override;

 private:
  using RowSet = std::vector<spectral::Spectrum>;

  std::shared_ptr<const Basis> basis_;
  dd::Manager* manager_;  // MAPI verification only
  bool use_add_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  int order_;
  PrefixMemo<RowSet> memo_;
  std::vector<std::shared_ptr<const RowSet>> rows_;
};

}  // namespace sani::verify
