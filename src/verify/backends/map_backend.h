#pragma once
// Flat-spectrum backend (MAP and MAPI engines).
//
// Convolution runs on the shared Basis' flat sorted spectra through a
// ConvolutionArena: cross products are emitted into reusable scratch,
// sorted, and collapsed into per-depth row-set slots, so the steady-state
// combination scan performs zero heap allocations (ArenaStats makes the
// claim testable).  Verification is either the scan product with the
// materialized ForbiddenRegion, each coordinate resolved by binary search
// over the sorted row (MAP), or the paper's symbolic ADD product (MAPI;
// needs the manager).  For MAPI the Driver has already thawed the Basis'
// frozen base-spectrum ADDs into the manager, so the per-row ADD rebuilds
// hit a warm unique table.

#include "spectral/flat_spectrum.h"
#include "verify/backends/backend.h"
#include "verify/prefix_memo.h"

namespace sani::verify {

class MapBackend : public Backend {
 public:
  MapBackend(const BackendContext& ctx, bool use_add);

  void prepare() override;
  void push(const std::vector<int>& path) override;
  void pop() override;
  std::optional<Mask> check_rows(const RowCheckQuery& q) override;
  void accumulate_deps(std::vector<Mask>& V) override;

 private:
  using RowSet = spectral::FlatRowSet;

  /// One level of the combination stack.  `rows` always points at the live
  /// row set; `owned` keeps memo-shared sets alive (null for the per-depth
  /// reusable slots, whose storage the backend owns).
  struct Level {
    const RowSet* rows = nullptr;
    std::shared_ptr<const RowSet> owned;
  };

  /// Convolves every (current row x base subset) pair into `out`.
  std::uint64_t build_level(const RowSet& cur,
                            const std::vector<spectral::FlatSpectrum>& base,
                            RowSet& out);

  std::shared_ptr<const Basis> basis_;
  dd::Manager* manager_;  // MAPI verification only
  bool use_add_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  int order_;
  PrefixMemo<RowSet> memo_;
  bool memo_enabled_;
  spectral::ConvolutionArena arena_;
  RowSet root_;                     // depth 0: the constant-zero spectrum
  std::vector<RowSet> slots_;       // per-depth reusable row sets
  std::vector<Level> stack_;
  // MAPI per-row ADD rebuild scratch, reused across all rows and
  // combinations (growth credited to the arena stats).
  std::vector<std::pair<Mask, std::int64_t>> add_scratch_;
};

}  // namespace sani::verify
