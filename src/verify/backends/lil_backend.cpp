#include "verify/backends/lil_backend.h"

#include "obs/trace.h"

namespace sani::verify {

using spectral::LilSpectrum;
using spectral::Spectrum;

LilBackend::LilBackend(const BackendContext& ctx)
    : basis_(ctx.basis),
      timers_(*ctx.timers),
      coefficients_(*ctx.coefficients),
      order_(ctx.order),
      memo_(ctx.memo_capacity, ctx.memo_stats) {}

void LilBackend::prepare() {
  rows_.push_back(std::make_shared<RowSet>(RowSet{LilSpectrum::from_spectrum(
      Spectrum::constant_zero(basis_->vars.num_vars))}));
}

void LilBackend::push(const std::vector<int>& path) {
  ScopedPhase phase(timers_, "convolution");
  obs::Span span("convolution");
  const bool memoize = static_cast<int>(path.size()) < order_;
  if (memoize) {
    if (const auto* hit = memo_.find(path)) {
      rows_.push_back(hit->rows);
      coefficients_ += hit->coefficients;
      return;
    }
  }
  const RowSet& cur = *rows_.back();
  const std::vector<LilSpectrum>& base = basis_->lil[path.back()];
  auto next = std::make_shared<RowSet>();
  next->reserve(cur.size() * base.size());
  std::uint64_t coeffs = 0;
  for (const LilSpectrum& r : cur)
    for (const LilSpectrum& s : base) {
      next->push_back(r.convolve(s));
      coeffs += next->back().nonzero_count();
    }
  coefficients_ += coeffs;
  if (memoize) memo_.insert(path, {next, coeffs});
  rows_.push_back(std::move(next));
}

void LilBackend::pop() { rows_.pop_back(); }

std::optional<Mask> LilBackend::check_rows(const RowCheckQuery& q) {
  ScopedPhase phase(timers_, "verification");
  obs::Span span("add_check");
  // LIL verification = product with the materialized relation vector,
  // each forbidden coordinate resolved by binary search in the sorted
  // list (the TCHES'20 baseline's cost model).
  if (q.region->empty()) return std::nullopt;
  for (const LilSpectrum& r : *rows_.back()) {
    Mask witness;
    if (q.region->find_violation(
            [&](const Mask& a) { return r.at(a) != 0; }, &witness,
            q.coefficients))
      return witness;
  }
  return std::nullopt;
}

void LilBackend::accumulate_deps(std::vector<Mask>& V) {
  for (const LilSpectrum& r : *rows_.back())
    for (const auto& [alpha, v] : r.entries()) {
      if (alpha.intersects(basis_->vars.random_vars)) continue;
      for (std::size_t i = 0; i < V.size(); ++i)
        V[i] |= alpha & basis_->vars.secret_vars[i];
    }
}

}  // namespace sani::verify
