#pragma once
// The engine backend interface (the mutable layer of the pipeline).
//
// A backend maintains the engine-specific representation of the rows at the
// current combination: a stack of row sets, one level per observable on the
// enumeration path.  The per-observable base data lives in the shared,
// immutable verify::Basis; for the manager-bound representations it arrives
// pre-thawed (the Driver imports the Basis' frozen forest into its private
// manager and hands the handles over).  The stack levels are immutable row
// sets shared with the prefix memo, so pushing a previously seen prefix is
// a pointer copy.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dd/bdd.h"
#include "util/mask.h"
#include "obs/clock.h"
#include "verify/basis.h"
#include "verify/checker.h"
#include "verify/observables.h"
#include "verify/types.h"

namespace sani::verify {

/// Construction context for a backend.  `manager`/`thawed`/`rho_zero` are
/// only set for engines whose registry entry has needs_thaw (the ADD
/// verification step and the FUJITA transform are manager-bound); scan
/// backends run entirely on the shared Basis.
struct BackendContext {
  std::shared_ptr<const Basis> basis;
  dd::Manager* manager = nullptr;
  /// Handles of the Basis' frozen roots, thawed into `manager` by the
  /// Driver; indexed by Basis::frozen_fn_roots / frozen_spectrum_roots.
  const std::vector<dd::Add>* thawed = nullptr;
  dd::Bdd rho_zero;  // FUJITA set-level check
  PhaseTimers* timers = nullptr;
  std::uint64_t* coefficients = nullptr;
  CacheStats* memo_stats = nullptr;
  /// Allocation counters of the flat convolution path (owned by the
  /// Driver); backends credit every scratch/row buffer growth here so the
  /// zero-per-combination-allocation property stays observable.
  spectral::ArenaStats* arena_stats = nullptr;
  std::int64_t memo_capacity = 0;
  int order = 1;  // full-depth rows are never reused; the memo skips them
};

/// Per-combination inputs of the row check, provided by the RowCheck layer.
struct RowCheckQuery {
  dd::Bdd violation_region;                 // ADD backends
  const ForbiddenRegion* region = nullptr;  // scan backends
  std::uint64_t* coefficients = nullptr;    // region lookups are counted here
};

/// Engine-specific representation of the rows at the current combination.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Builds the root row and wires up any manager-bound base data (already
  /// thawed by the Driver).  The shared, manager-independent base spectra
  /// are prepared once in build_basis().
  virtual void prepare() = 0;

  /// Extends the current combination by the last element of `path` (the
  /// full path is the memo key); the row set becomes the cross product of
  /// the previous rows with the observable's XOR-subsets.
  virtual void push(const std::vector<int>& path) = 0;
  virtual void pop() = 0;

  /// Applies the per-row check to every row of the current combination.
  virtual std::optional<Mask> check_rows(const RowCheckQuery& q) = 0;

  /// Unions the rho=0 share supports of the current rows into V (per
  /// secret), for the set-level check.
  virtual void accumulate_deps(std::vector<Mask>& V) = 0;
};

}  // namespace sani::verify
