#pragma once
// List-of-lists backend (LIL engine — the TCHES'20 exact baseline).
//
// Convolution and verification run on the shared Basis' sorted-list
// spectra; no dd::Manager is needed anywhere, so parallel LIL workers share
// one Basis without replaying the unfolding.

#include "verify/backends/backend.h"
#include "verify/prefix_memo.h"

namespace sani::verify {

class LilBackend : public Backend {
 public:
  explicit LilBackend(const BackendContext& ctx);

  void prepare() override;
  void push(const std::vector<int>& path) override;
  void pop() override;
  std::optional<Mask> check_rows(const RowCheckQuery& q) override;
  void accumulate_deps(std::vector<Mask>& V) override;

 private:
  using RowSet = std::vector<spectral::LilSpectrum>;

  std::shared_ptr<const Basis> basis_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  int order_;
  PrefixMemo<RowSet> memo_;
  std::vector<std::shared_ptr<const RowSet>> rows_;
};

}  // namespace sani::verify
