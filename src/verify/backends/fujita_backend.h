#pragma once
// Fujita backend: transform the XOR-combination directly.
//
// The base XOR-subsets are plain BDDs in the worker's manager; pushing an
// observable XORs the subset function into the running combination and runs
// the Fujita spectral transform, so no convolution happens at all.  The
// shared Basis carries the subset functions as a frozen forest
// (Basis::frozen_fn_roots); the Driver thaws them into this worker's
// manager and prepare() merely indexes the handles — no unfolding replay.

#include "dd/add.h"
#include "verify/backends/backend.h"
#include "verify/prefix_memo.h"

namespace sani::verify {

class FujitaBackend : public Backend {
 public:
  explicit FujitaBackend(const BackendContext& ctx);

  void prepare() override;
  void push(const std::vector<int>& path) override;
  void pop() override;
  std::optional<Mask> check_rows(const RowCheckQuery& q) override;
  void accumulate_deps(std::vector<Mask>& V) override;

 private:
  struct Row {
    dd::Bdd fn;
    dd::Add spectrum;
  };
  using RowSet = std::vector<Row>;

  std::shared_ptr<const Basis> basis_;
  dd::Manager* manager_;
  const std::vector<dd::Add>* thawed_;
  dd::Bdd rho0_;
  PhaseTimers& timers_;
  std::uint64_t& coefficients_;
  int order_;
  PrefixMemo<RowSet> memo_;
  std::vector<std::vector<dd::Bdd>> base_;
  std::vector<std::shared_ptr<const RowSet>> rows_;
};

}  // namespace sani::verify
