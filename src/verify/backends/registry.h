#pragma once
// The backend registry: one entry per verification engine.
//
// Single source of truth for the engine list — the CLI resolves --engine
// names here, the driver constructs backends through the factory, and the
// runtime reads the capability flags to decide what the Basis must carry
// and whether the Driver must thaw the Basis' frozen DD forest into a
// private manager before verification.

#include <memory>
#include <string>
#include <vector>

#include "verify/backends/backend.h"
#include "verify/types.h"

namespace sani::verify {

struct BackendInfo {
  EngineKind kind;
  const char* name;     // CLI spelling ("lil", "map", "mapi", "fujita")
  const char* summary;  // one-line description for --help / errors
  bool needs_thaw;      // verification multiplies against predicate BDDs:
                        // the Driver creates a private dd::Manager and thaws
                        // the Basis' frozen forest into it (no unfolding
                        // replay — the Basis is manager-independent for
                        // every engine)
  bool needs_spectra;   // Basis must carry the hash-map base spectra
  bool needs_lil;       // Basis must carry the sorted-list copies
  bool frozen_fns;      // Basis must freeze the XOR-subset function BDDs
  bool frozen_spectra;  // Basis must freeze the base-spectrum ADDs
  std::unique_ptr<Backend> (*make)(const BackendContext& ctx);
};

/// All registered backends, in EngineKind order.
const std::vector<BackendInfo>& backend_registry();

/// Registry entry of `kind` (every EngineKind is registered).
const BackendInfo& backend_info(EngineKind kind);

/// Registry entry with CLI name `name`, or nullptr if unknown.
const BackendInfo* backend_by_name(const std::string& name);

/// "lil, map, mapi, fujita" — for usage text and error messages.
std::string backend_name_list();

}  // namespace sani::verify
