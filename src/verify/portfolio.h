#pragma once
// Adaptive engine portfolio (the `--engine auto` front-end).
//
// No single engine wins everywhere: the ADD verification step (MAPI)
// dominates on gadgets whose forbidden regions are huge (keccak-class,
// where a scan engine must binary-search thousands of region cells per
// combination), while the scan engines win on the small gadgets where
// per-combination manager traffic is pure overhead.  The portfolio picks
// the engine per gadget from cheap structural predictors that are already
// known once the Basis is prepared — spectrum density, probe count, cone
// width, combination count — plus, independently, an adaptive computed-
// table size: the fixed 2^18-entry table costs more to zero than an entire
// small-gadget verification, so kAuto also right-sizes cache_bits from the
// same predictors (forced engines keep their configured size, which keeps
// the LIL baseline column and the cross-engine equality tests meaningful).
//
// Everything here is a pure function of the Basis/netlist and the options:
// no wall clock, no randomness — the choice is deterministic (tested), so
// verdict/witness equality with every forced engine follows from the
// existing cross-engine tests.

#include "circuit/spec.h"
#include "verify/basis.h"
#include "verify/types.h"

namespace sani::verify {

/// The cost-model inputs.  All cheap: O(observables) over prepared data.
struct Predictors {
  std::size_t observables = 0;
  int order = 1;
  int num_vars = 0;
  std::uint64_t combinations = 0;      // sum_{k<=order} C(observables, k)
  std::uint64_t base_coefficients = 0;
  std::uint64_t total_subsets = 0;     // sum of per-observable XOR-subsets
  std::uint64_t max_cone_width = 0;    // max XOR-subsets of one observable
  std::uint64_t share_positions = 0;   // popcount of the share coordinates
  std::size_t frozen_nodes = 0;
  double mean_spectrum_size = 0.0;     // base_coefficients / total_subsets
  double density = 0.0;                // mean size / 2^min(num_vars, 40)
};

/// Computes the predictors from a prepared Basis (any engine's Basis works;
/// only metadata and counters are read).
Predictors compute_predictors(const Basis& basis, const VerifyOptions& options);

/// The cost model: picks the engine with the lowest predicted total cost.
EngineKind choose_engine(const Predictors& p);

/// Adaptive computed-table sizing for the verification manager, bounded by
/// the configured `ceiling` (the user's --cache-bits stays an upper bound).
int suggest_cache_bits(const Predictors& p, int ceiling);

/// Same, for the unfolding manager — used before a Basis exists, from the
/// netlist's structural stats alone.
int suggest_unfold_cache_bits(const circuit::Gadget& gadget, int ceiling);

/// Fills the report record from a resolution.
PortfolioStats make_portfolio_stats(const Predictors& p,
                                    const VerifyOptions& resolved);

/// Resolves kAuto into a concrete engine + cache size; returns `options`
/// unchanged when the engine is already forced.  `out_stats` (optional)
/// receives the record for the report.
VerifyOptions resolve_portfolio(const Basis& basis,
                                const VerifyOptions& options,
                                PortfolioStats* out_stats);

}  // namespace sani::verify
