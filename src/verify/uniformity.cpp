#include "verify/uniformity.h"

#include <map>
#include <stdexcept>

#include "circuit/unfold.h"
#include "spectral/spectrum.h"

namespace sani::verify {

UniformityResult check_uniformity(const circuit::Gadget& gadget) {
  UniformityResult result;
  circuit::Unfolded u = circuit::unfold(gadget);

  // Flat list of output shares with their group index.
  struct Share {
    circuit::WireId wire;
    int group;
  };
  std::vector<Share> shares;
  for (std::size_t g = 0; g < gadget.spec.outputs.size(); ++g)
    for (circuit::WireId w : gadget.spec.outputs[g].shares)
      shares.push_back({w, static_cast<int>(g)});
  const std::size_t m = shares.size();
  if (m > 20)
    throw std::invalid_argument(
        "check_uniformity: too many output shares to enumerate");
  std::vector<std::size_t> group_sizes(gadget.spec.outputs.size());
  for (std::size_t g = 0; g < gadget.spec.outputs.size(); ++g)
    group_sizes[g] = gadget.spec.outputs[g].shares.size();

  for (std::size_t sel = 1; sel < (std::size_t{1} << m); ++sel) {
    // Skip combinations that take all-or-none of every group: those XOR to
    // a deterministic function of the secrets.
    std::vector<std::size_t> taken(group_sizes.size(), 0);
    for (std::size_t j = 0; j < m; ++j)
      if (sel & (std::size_t{1} << j)) ++taken[shares[j].group];
    bool complete = true;
    for (std::size_t g = 0; g < taken.size(); ++g)
      if (taken[g] != 0 && taken[g] != group_sizes[g]) complete = false;
    if (complete) continue;

    ++result.combinations_checked;
    dd::Bdd f = dd::Bdd::zero(*u.manager);
    for (std::size_t j = 0; j < m; ++j)
      if (sel & (std::size_t{1} << j)) f ^= u.wire_fn[shares[j].wire];
    spectral::Spectrum s = spectral::Spectrum::from_bdd(f);
    for (const auto& [alpha, v] : s.coefficients()) {
      if (alpha.intersects(u.vars.random_vars)) continue;
      result.uniform = false;
      result.witness_alpha = alpha;
      for (std::size_t j = 0; j < m; ++j)
        if (sel & (std::size_t{1} << j))
          result.witness_shares.push_back(
              gadget.netlist.node(shares[j].wire).name);
      return result;
    }
  }
  return result;
}

UniformityResult check_uniformity_bruteforce(const circuit::Gadget& gadget) {
  UniformityResult result;
  const circuit::Netlist& nl = gadget.netlist;
  const auto inputs = nl.inputs();
  const int n = static_cast<int>(inputs.size());
  if (n > 20)
    throw std::invalid_argument("check_uniformity_bruteforce: too large");

  std::map<circuit::WireId, int> pos;
  for (int i = 0; i < n; ++i) pos[inputs[i]] = i;
  Mask random_pos;
  for (circuit::WireId w : gadget.spec.randoms) random_pos.set(pos.at(w));

  std::vector<circuit::WireId> shares;
  for (const auto& g : gadget.spec.outputs)
    for (circuit::WireId w : g.shares) shares.push_back(w);
  const std::size_t m = shares.size();
  if (m > 16)
    throw std::invalid_argument("check_uniformity_bruteforce: too many shares");

  // counts[non-random input assignment][output tuple]
  const int fixed_bits = n - random_pos.popcount();
  if (fixed_bits + static_cast<int>(m) > 26)
    throw std::invalid_argument(
        "check_uniformity_bruteforce: counts table too large");
  std::vector<std::vector<std::uint32_t>> counts(
      std::size_t{1} << fixed_bits,
      std::vector<std::uint32_t>(std::size_t{1} << m, 0));

  for (std::size_t x = 0; x < (std::size_t{1} << n); ++x) {
    std::vector<bool> in;
    for (int i = 0; i < n; ++i) in.push_back((x >> i) & 1);
    const auto v = nl.evaluate(in);
    std::size_t tuple = 0;
    for (std::size_t j = 0; j < m; ++j)
      tuple |= static_cast<std::size_t>(v[shares[j]]) << j;
    std::size_t fixed = 0;
    int k = 0;
    for (int i = 0; i < n; ++i) {
      if (random_pos.test(i)) continue;
      fixed |= ((x >> i) & std::size_t{1}) << k;
      ++k;
    }
    ++counts[fixed][tuple];
  }

  // Uniform output sharing: within each fixed-input class the distribution
  // must cover *all* 2^(m - #groups) sharings consistent with the output
  // values, each equally often.  (Merely "equal where nonzero" would accept
  // deterministic sharings like the TI AND's.)
  const std::size_t valid_tuples =
      std::size_t{1} << (m - gadget.spec.outputs.size());
  for (const auto& dist : counts) {
    std::size_t support = 0;
    std::uint32_t nonzero = 0;
    for (std::uint32_t c : dist)
      if (c != 0) {
        ++support;
        if (nonzero == 0) nonzero = c;
        if (c != nonzero) {
          result.uniform = false;
          return result;
        }
      }
    if (support != valid_tuples) {
      result.uniform = false;
      return result;
    }
  }
  return result;
}

}  // namespace sani::verify
