#include "verify/checker.h"

#include <sstream>
#include <stdexcept>

namespace sani::verify {

const char* notion_name(Notion n) {
  switch (n) {
    case Notion::kProbing: return "probing";
    case Notion::kNI: return "NI";
    case Notion::kSNI: return "SNI";
    case Notion::kPINI: return "PINI";
  }
  return "?";
}

const char* engine_name(EngineKind e) {
  switch (e) {
    case EngineKind::kLIL: return "LIL";
    case EngineKind::kMAP: return "MAP";
    case EngineKind::kMAPI: return "MAPI";
    case EngineKind::kFUJITA: return "FUJITA";
    case EngineKind::kAuto: return "auto";
  }
  return "?";
}

Checker::Checker(const circuit::VarMap& vars, Notion notion,
                 bool joint_share_count)
    : vars_(vars), notion_(notion), joint_(joint_share_count) {
  const std::size_t num_indices =
      vars_.secret_share_var.empty() ? 0 : vars_.secret_share_var.front().size();
  index_vars_.resize(num_indices);
  for (const auto& group : vars_.secret_share_var)
    for (std::size_t j = 0; j < group.size(); ++j)
      index_vars_[j].set(group[j]);
}

int Checker::threshold(const RowContext& row) const {
  switch (notion_) {
    case Notion::kNI: return row.num_observables;
    case Notion::kSNI: return row.num_internal;
    default: return 0;  // probing/PINI use dedicated predicates
  }
}

int Checker::disallowed_indices(const Mask& bits,
                                const std::set<int>& allowed) const {
  int count = 0;
  for (std::size_t j = 0; j < index_vars_.size(); ++j)
    if (!allowed.count(static_cast<int>(j)) && bits.intersects(index_vars_[j]))
      ++count;
  return count;
}

bool Checker::coefficient_violates(const Mask& alpha,
                                   const RowContext& row) const {
  if (alpha.intersects(vars_.random_vars)) return false;  // rho != 0
  switch (notion_) {
    case Notion::kNI:
    case Notion::kSNI: {
      const int t = threshold(row);
      if (joint_) return (alpha & vars_.share_vars).popcount() > t;
      for (const auto& group : vars_.secret_vars)
        if ((alpha & group).popcount() > t) return true;
      return false;
    }
    case Notion::kProbing: {
      bool some_full = false;
      for (const auto& group : vars_.secret_vars) {
        const Mask sel = alpha & group;
        if (sel.empty()) continue;
        if (sel != group) return false;  // partial: averages to zero
        some_full = true;
      }
      return some_full;
    }
    case Notion::kPINI:
      return disallowed_indices(alpha & vars_.share_vars, row.output_indices) >
             row.num_internal;
  }
  return false;
}

ForbiddenRegion::ForbiddenRegion(const Checker& checker,
                                 const circuit::VarMap& vars,
                                 const RowContext& row,
                                 const Mask& extra_vars)
    : row_(row),
      notion_(checker.notion()),
      joint_(checker.joint_share_count()),
      threshold_(checker.threshold(row)) {
  // Enumeration space: share coordinates plus the requested extras, in
  // ascending variable order.
  Mask space = vars.share_vars | extra_vars;
  space.for_each_bit([&](int v) { positions_.push_back(v); });
  if (positions_.size() > 40)
    throw std::invalid_argument(
        "ForbiddenRegion: enumeration space too large for the scan engines");

  auto compact_of = [&](const Mask& m) {
    std::uint64_t c = 0;
    for (std::size_t i = 0; i < positions_.size(); ++i)
      if (m.test(positions_[i])) c |= std::uint64_t{1} << i;
    return c;
  };
  for (const Mask& g : vars.secret_vars)
    group_compact_.push_back(compact_of(g));
  shares_compact_ = compact_of(vars.share_vars);
  const std::size_t num_indices =
      vars.secret_share_var.empty() ? 0 : vars.secret_share_var.front().size();
  for (std::size_t j = 0; j < num_indices; ++j) {
    Mask ij;
    for (const auto& group : vars.secret_share_var) ij.set(group[j]);
    index_compact_.push_back(compact_of(ij));
  }
}

bool ForbiddenRegion::forbidden(std::uint64_t idx) const {
  switch (notion_) {
    case Notion::kNI:
    case Notion::kSNI: {
      if (joint_)
        return __builtin_popcountll(idx & shares_compact_) > threshold_;
      for (std::uint64_t g : group_compact_)
        if (__builtin_popcountll(idx & g) > threshold_) return true;
      return false;
    }
    case Notion::kProbing: {
      bool some_full = false;
      for (std::uint64_t g : group_compact_) {
        const std::uint64_t sel = idx & g;
        if (sel == 0) continue;
        if (sel != g) return false;
        some_full = true;
      }
      return some_full;
    }
    case Notion::kPINI: {
      int extra = 0;
      for (std::size_t j = 0; j < index_compact_.size(); ++j)
        if (!row_.output_indices.count(static_cast<int>(j)) &&
            (idx & index_compact_[j]) != 0)
          ++extra;
      return extra > row_.num_internal;
    }
  }
  return false;
}

Mask ForbiddenRegion::expand(std::uint64_t idx) const {
  Mask m;
  while (idx) {
    const int bit = __builtin_ctzll(idx);
    m.set(positions_[bit]);
    idx &= idx - 1;
  }
  return m;
}

bool ForbiddenRegion::empty() const {
  switch (notion_) {
    case Notion::kNI:
    case Notion::kSNI: {
      if (joint_)
        return __builtin_popcountll(shares_compact_) <= threshold_;
      for (std::uint64_t g : group_compact_)
        if (__builtin_popcountll(g) > threshold_) return false;
      return true;
    }
    case Notion::kProbing:
      return group_compact_.empty();
    case Notion::kPINI: {
      int candidates = 0;
      for (std::size_t j = 0; j < index_compact_.size(); ++j)
        if (!row_.output_indices.count(static_cast<int>(j))) ++candidates;
      return candidates <= row_.num_internal;
    }
  }
  return true;
}

bool Checker::union_violates(const std::vector<Mask>& V, const RowContext& row,
                             std::string* reason) const {
  auto fail = [&](const std::string& msg) {
    if (reason) *reason = msg;
    return true;
  };
  switch (notion_) {
    case Notion::kProbing:
      return false;  // exact per coefficient
    case Notion::kNI:
    case Notion::kSNI: {
      const int t = threshold(row);
      if (joint_) {
        Mask all;
        for (const auto& v : V) all |= v;
        if (all.popcount() > t) {
          std::ostringstream os;
          os << "joint distribution depends on " << all.popcount()
             << " input shares in total but only " << t << " are allowed ("
             << notion_name(notion_) << ", joint counting)";
          return fail(os.str());
        }
        return false;
      }
      for (std::size_t i = 0; i < V.size(); ++i)
        if (V[i].popcount() > t) {
          std::ostringstream os;
          os << "joint distribution depends on " << V[i].popcount()
             << " shares of secret " << i << " but only " << t
             << " are allowed (" << notion_name(notion_) << ")";
          return fail(os.str());
        }
      return false;
    }
    case Notion::kPINI: {
      Mask all;
      for (const auto& v : V) all |= v;
      const int extra = disallowed_indices(all, row.output_indices);
      if (extra > row.num_internal) {
        std::ostringstream os;
        os << "observations touch " << extra
           << " share indices beyond the probed outputs, but only "
           << row.num_internal << " internal probes were placed (PINI)";
        return fail(os.str());
      }
      return false;
    }
  }
  return false;
}

}  // namespace sani::verify
