#pragma once
// The observable universe: declared output shares plus internal probes.
//
// This realizes the "unfolding" product of Sec. III-A: every intermediate
// wire of the gadget becomes a candidate probe, with its Boolean function
// already built as a BDD.  In the robust model an observable carries the
// whole tuple of stable-source functions of its glitch cone.

#include <string>
#include <vector>

#include "circuit/cone_hash.h"
#include "circuit/spec.h"
#include "circuit/unfold.h"
#include "dd/bdd.h"
#include "verify/types.h"

namespace sani::verify {

struct Observable {
  enum class Kind : std::uint8_t { kOutput, kProbe };

  Kind kind = Kind::kProbe;
  std::string name;
  circuit::WireId wire = circuit::kNoWire;

  /// The functions the adversary learns from this observation.  Exactly one
  /// entry in the standard model; the glitch-cone tuple in the robust model.
  std::vector<dd::Bdd> fns;

  /// For outputs: position within the gadget's output groups (used by PINI).
  int output_group = -1;
  int output_share_index = -1;
};

struct ObservableSet {
  std::vector<Observable> items;  // outputs first, then probes
  std::size_t num_outputs = 0;

  /// Structural cone digest per item (circuit/cone_hash.h), parallel to
  /// `items`, plus the varmap role fingerprint the digests are relative to.
  /// Basis carries both into its ConeIndex for incremental re-verification.
  std::vector<circuit::ConeDigest> digests;
  circuit::ConeDigest varmap;

  std::size_t size() const { return items.size(); }
};

/// Builds the universe from an unfolded gadget under the given model.
ObservableSet build_observables(const circuit::Gadget& gadget,
                                const circuit::Unfolded& unfolded,
                                const ProbeModelOptions& options);

/// Restricts the universe to the declared outputs plus the named probe
/// wires only — used to analyse fixed configurations like the Fig. 1/2
/// composition example.
ObservableSet build_observables_with_probes(
    const circuit::Gadget& gadget, const circuit::Unfolded& unfolded,
    const std::vector<std::string>& probe_names,
    const ProbeModelOptions& options = {});

}  // namespace sani::verify
