#pragma once
// Bounded LRU memo for convolution prefixes.
//
// Within one enumeration walk, sync_path() already reuses the rows of the
// longest common prefix between lexicographically *adjacent* combinations.
// What it cannot reuse are prefixes that come back after the stack popped
// below them: a shard boundary restarts the path from scratch, and the
// largest-first order revisits every size-(k-1) prefix as a combination of
// its own after the size-k pass.  The memo keeps the most recently used
// prefix row sets keyed by the combination prefix, so that reuse survives
// shard boundaries and largest-first restarts.
//
// Entries hold shared_ptr row sets: the backend's stack and the memo share
// one immutable row set, so a hit costs a pointer copy and eviction never
// invalidates rows still on the stack.  The stored coefficient count is
// credited on every hit, keeping VerifyStats::coefficients independent of
// the memo capacity (asserted by tests).

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "verify/types.h"

namespace sani::verify {

/// LRU map from combination prefix to the rows at that prefix.
/// `capacity` < 0 = unbounded, 0 = disabled (every lookup misses).
template <typename RowSet>
class PrefixMemo {
 public:
  struct Entry {
    std::shared_ptr<const RowSet> rows;
    std::uint64_t coefficients = 0;  // nonzero count credited on a hit
  };

  PrefixMemo(std::int64_t capacity, CacheStats* stats)
      : capacity_(capacity), stats_(stats) {}

  /// Looks up `key`, refreshing its LRU position.  Counts a hit or miss.
  const Entry* find(const std::vector<int>& key) {
    if (capacity_ != 0) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        if (stats_) ++stats_->hits;
        return &it->second->second;
      }
    }
    if (stats_) ++stats_->misses;
    return nullptr;
  }

  /// Inserts `entry` at `key`, evicting the least recently used entry when
  /// over capacity.  No-op when disabled or the key is already present.
  void insert(const std::vector<int>& key, Entry entry) {
    if (capacity_ == 0 || index_.count(key)) return;
    lru_.emplace_front(key, std::move(entry));
    index_.emplace(key, lru_.begin());
    if (capacity_ > 0 &&
        static_cast<std::int64_t>(lru_.size()) > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  std::size_t size() const { return lru_.size(); }

 private:
  using Lru = std::list<std::pair<std::vector<int>, Entry>>;

  std::int64_t capacity_;
  CacheStats* stats_;
  Lru lru_;  // front = most recently used
  std::map<std::vector<int>, typename Lru::iterator> index_;
};

}  // namespace sani::verify
