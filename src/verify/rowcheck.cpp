#include "verify/rowcheck.h"

namespace sani::verify {

RowCheck::RowCheck(const circuit::VarMap& vars, Notion notion,
                   bool joint_share_count, const Mask& relevant_publics,
                   PredicateBuilder* preds, CacheStats* stats)
    : vars_(vars),
      checker_(vars, notion, joint_share_count),
      relevant_publics_(relevant_publics),
      preds_(preds),
      stats_(stats) {}

RowCheck::Key RowCheck::key_of(const RowContext& row) const {
  return {checker_.threshold(row), row.num_internal,
          std::vector<int>(row.output_indices.begin(),
                           row.output_indices.end())};
}

dd::Bdd RowCheck::build_predicate(const RowContext& row) {
  switch (checker_.notion()) {
    case Notion::kNI:
    case Notion::kSNI:
      return preds_->ni_violation(checker_.threshold(row));
    case Notion::kProbing:
      return preds_->probing_violation();
    case Notion::kPINI:
      return preds_->pini_violation(row.output_indices, row.num_internal);
  }
  return preds_->probing_violation();
}

RowCheckQuery RowCheck::query(const RowContext& row,
                              std::uint64_t* coefficients) {
  RowCheckQuery q;
  q.coefficients = coefficients;
  const Key key = key_of(row);
  if (preds_) {
    auto it = predicates_.find(key);
    if (it == predicates_.end()) {
      if (stats_) ++stats_->misses;
      it = predicates_.emplace(key, build_predicate(row)).first;
    } else if (stats_) {
      ++stats_->hits;
    }
    q.violation_region = it->second;
  } else {
    auto it = regions_.find(key);
    if (it == regions_.end()) {
      if (stats_) ++stats_->misses;
      it = regions_
               .emplace(key, std::make_unique<ForbiddenRegion>(
                                 checker_, vars_, row, relevant_publics_))
               .first;
    } else if (stats_) {
      ++stats_->hits;
    }
    q.region = it->second.get();
  }
  return q;
}

}  // namespace sani::verify
