#include "verify/qinfo.h"

#include <algorithm>

#include "util/combinations.h"

namespace sani::verify {

std::uint64_t QInfoStore::key_of(const std::vector<int>& combo) const {
  return (combination_rank(n_, combo) << 6) | combo.size();
}

void QInfoStore::account(const QInfo& info) {
  bytes_ += sizeof(QInfo) + sizeof(std::uint64_t) +
            info.V.capacity() * sizeof(Mask) +
            sizeof(std::pair<std::uint64_t, std::uint32_t>) + sizeof(void*);
  if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
}

void QInfoStore::unaccount(const QInfo& info) {
  bytes_ -= sizeof(QInfo) + sizeof(std::uint64_t) +
            info.V.capacity() * sizeof(Mask) +
            sizeof(std::pair<std::uint64_t, std::uint32_t>) + sizeof(void*);
}

void QInfoStore::insert(const std::vector<int>& combo, QInfo info) {
  const std::uint64_t key = key_of(combo);
  account(info);
  index_.emplace(key, static_cast<std::uint32_t>(arena_.size()));
  keys_.push_back(key);
  arena_.push_back(std::move(info));
}

const QInfo* QInfoStore::find(const std::vector<int>& combo) const {
  auto it = index_.find(key_of(combo));
  if (it == index_.end()) return nullptr;
  return &arena_[it->second];
}

void QInfoStore::merge_from(const QInfoStore& other) {
  for (std::size_t i = 0; i < other.arena_.size(); ++i) {
    account(other.arena_[i]);
    index_.emplace(other.keys_[i],
                   static_cast<std::uint32_t>(arena_.size()));
    keys_.push_back(other.keys_[i]);
    arena_.push_back(other.arena_[i]);
  }
}

std::vector<std::vector<int>> QInfoStore::sorted_combos() const {
  std::vector<std::vector<int>> combos;
  combos.reserve(keys_.size());
  for (std::uint64_t key : keys_)
    combos.push_back(unrank_combination(n_, static_cast<int>(key & 63),
                                        key >> 6));
  std::sort(combos.begin(), combos.end());
  return combos;
}

}  // namespace sani::verify
