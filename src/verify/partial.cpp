#include "verify/partial.h"

#include "obs/clock.h"
#include "obs/trace.h"
#include "sched/cancel.h"
#include "util/combinations.h"
#include "verify/driver.h"
#include "verify/backends/registry.h"

namespace sani::verify {

bool combo_before(const std::vector<int>& a, const std::vector<int>& b,
                  bool largest_first) {
  if (largest_first && a.size() != b.size()) return a.size() > b.size();
  return a < b;
}

void union_pass(const Basis& basis, const Checker& checker,
                const QInfoStore& qinfo, sched::CancelToken* cancel,
                VerifyResult& result) {
  for (const std::vector<int>& q_path : qinfo.sorted_combos()) {
    if (cancel && cancel->expired()) {
      result.timed_out = true;
      cancel->acknowledge();
      return;
    }
    const QInfo& info = *qinfo.find(q_path);
    // V(Q) = union of deps over all sub-combinations of Q.
    std::vector<Mask> V(info.V.size());
    const std::size_t k = q_path.size();
    for (std::size_t sel = 1; sel < (std::size_t{1} << k); ++sel) {
      std::vector<int> sub;
      for (std::size_t j = 0; j < k; ++j)
        if (sel & (std::size_t{1} << j)) sub.push_back(q_path[j]);
      const QInfo* it = qinfo.find(sub);
      if (!it) continue;
      for (std::size_t s = 0; s < V.size(); ++s) V[s] |= it->V[s];
    }
    std::string reason;
    if (checker.union_violates(V, info.row, &reason)) {
      result.secure = false;
      CounterExample ce;
      for (int i : q_path)
        ce.observables.push_back(basis.obs[static_cast<std::size_t>(i)].name);
      for (const Mask& v : V) ce.alpha |= v;
      ce.reason = "set-level dependency check failed: " + reason;
      result.counterexample = std::move(ce);
      return;
    }
  }
}

namespace {

/// Driver::context_for, recomputed from the basis: the RowContext of a
/// combination is a pure function of the observables' kinds, so a partial
/// deserialized from disk (which ships only rank + V per dependency entry)
/// reconstructs exactly the record a live worker would have handed over.
RowContext context_for_combo(const Basis& basis, const std::vector<int>& combo) {
  RowContext row;
  row.num_observables = static_cast<int>(combo.size());
  for (int i : combo) {
    const ObservableInfo& o = basis.obs[static_cast<std::size_t>(i)];
    if (o.kind == Observable::Kind::kOutput) {
      ++row.num_outputs;
      row.output_indices.insert(o.output_share_index);
    } else {
      ++row.num_internal;
    }
  }
  return row;
}

}  // namespace

ReportAssembler::ReportAssembler(std::shared_ptr<const Basis> basis,
                                 VerifyOptions options)
    : basis_(std::move(basis)),
      options_(std::move(options)),
      qinfo_(static_cast<int>(basis_->size())) {
  // The assembler renders from already-complete partials: nothing here may
  // block on a wall clock or report live progress.
  options_.time_limit = 0.0;
  options_.progress = nullptr;
}

ReportAssembler::~ReportAssembler() = default;

void ReportAssembler::add(PartialReport part) {
  ++parts_;
  const int N = static_cast<int>(basis_->size());
  combinations_ += part.combinations;
  coefficients_ += part.coefficients;
  prefix_memo_.hits += part.prefix_memo.hits;
  prefix_memo_.misses += part.prefix_memo.misses;
  region_cache_.hits += part.region_cache.hits;
  region_cache_.misses += part.region_cache.misses;
  convolution_seconds_ += part.convolution_seconds;
  verification_seconds_ += part.verification_seconds;

  if (part.has_failure) {
    std::vector<int> combo = unrank_combination(N, part.k, part.fail_rank);
    const bool largest = options_.search_order == SearchOrder::kLargestFirst;
    if (!best_ || combo_before(combo, best_->combo, largest))
      best_ = BestFailure{std::move(combo), part.fail_alpha,
                          std::move(part.fail_reason)};
  }

  if (options_.union_check && options_.notion != Notion::kProbing) {
    // Deps arrive rank-ascending (shards check in rank order), so one
    // unrank seeds the walk and successor steps recover every later combo —
    // cheaper than a full unrank per entry when a deserialized shard
    // carries one dep per passing combination.
    std::vector<int> combo;
    std::uint64_t at = 0;
    for (PartialReport::Dep& dep : part.deps) {
      if (combo.empty() || dep.rank < at) {
        combo = unrank_combination(N, part.k, dep.rank);
      } else {
        while (at < dep.rank) {
          next_combination(combo, N);
          ++at;
        }
      }
      at = dep.rank;
      QInfo info;
      info.row = dep.row.num_observables > 0
                     ? std::move(dep.row)
                     : context_for_combo(*basis_, combo);
      info.V = std::move(dep.V);
      qinfo_.insert(combo, std::move(info));
    }
  }
}

CounterExample ReportAssembler::failure_counterexample() const {
  CounterExample ce;
  for (int i : best_->combo)
    ce.observables.push_back(basis_->obs[static_cast<std::size_t>(i)].name);
  ce.alpha = best_->alpha;
  ce.reason = best_->reason;
  return ce;
}

void ReportAssembler::set_basis_stats(std::uint64_t frozen_nodes,
                                      std::uint64_t frozen_bytes,
                                      std::uint64_t base_coefficients,
                                      double build_seconds) {
  basis_stats_ = BasisStats{frozen_nodes, frozen_bytes, base_coefficients,
                            build_seconds};
}

VerifyResult ReportAssembler::finalize() {
  const std::uint64_t base_coefficients =
      basis_stats_ ? basis_stats_->base_coefficients
                   : basis_->base_coefficients;
  const double build_seconds =
      basis_stats_ ? basis_stats_->build_seconds : basis_->build_seconds;

  VerifyResult result;
  result.stats.num_observables = basis_->size();
  result.stats.combinations = combinations_;
  result.stats.coefficients = base_coefficients + coefficients_;
  result.stats.prefix_memo = prefix_memo_;
  result.stats.region_cache = region_cache_;
  result.stats.qinfo_entries = qinfo_.size();
  result.stats.qinfo_peak_bytes = qinfo_.peak_bytes();
  result.stats.frozen_nodes =
      basis_stats_ ? static_cast<std::size_t>(basis_stats_->frozen_nodes)
                   : basis_->frozen.node_count();
  result.stats.frozen_bytes =
      basis_stats_ ? static_cast<std::size_t>(basis_stats_->frozen_bytes)
                   : (basis_->frozen.empty() ? 0 : basis_->frozen.bytes());

  // Canonical phase set in the serial engine's first-use order, whatever
  // engines produced the partials: the report's shape is a function of the
  // *canonical* options, which is what lets a resumed mixed-engine scan
  // byte-match an uninterrupted one under --deterministic-report.
  const bool needs_thaw = backend_info(options_.engine).needs_thaw;
  if (needs_thaw) result.stats.timers.add("thaw", 0.0);
  result.stats.timers.add("base", build_seconds);
  if (combinations_ > 0) {
    result.stats.timers.add("convolution", convolution_seconds_);
    result.stats.timers.add("verification", verification_seconds_);
  }

  if (best_) {
    result.secure = false;
    result.counterexample = failure_counterexample();
  } else if (options_.union_check && options_.notion != Notion::kProbing) {
    // The set-level pass over the merged store — sorted_combos() restores
    // the serial iteration order, so the union witness is completion-order
    // independent too.  A bare Checker hosts the pass: union_violates is
    // pure mask arithmetic, so no backend is prepared and the frozen forest
    // is never thawed — finalizing a drained scan costs checkpoint I/O plus
    // this loop, nothing engine-shaped.
    const Checker checker(basis_->vars, options_.notion,
                          options_.joint_share_count);
    ScopedPhase phase(result.stats.timers, "union");
    obs::Span span("union");
    union_pass(*basis_, checker, qinfo_, nullptr, result);
    // dd.cache_bits is configuration, not measurement (the deterministic
    // report keeps it): report what the canonical engine's manager is sized
    // with.  The measured dd fields stay zero — this pass does no DD work.
    result.stats.dd_cache_bits = needs_thaw ? options_.cache_bits : 0;
  }
  return result;
}

}  // namespace sani::verify
