#pragma once
// Mergeable per-shard verification results.
//
// A PartialReport is the complete, self-contained outcome of checking one
// rank-range shard (sched::Shard) against a prepared verify::Basis: the
// shard's locally-first failure (if any), its counter deltas, and the
// union-check dependency masks of its passing combinations.  Crucially it
// is a pure function of (Basis content, semantic options, shard) — a shard
// runs to its own end or its own first failure, never cut short by another
// shard's findings — so producing the same shard twice yields the same
// partial, whoever (and whichever engine) ran it.  That purity is what
// makes the cross-process checkpoint protocol (store/manifest.h) safe
// against duplicated claims and what makes the merge below associative.
//
// ReportAssembler folds partials in any order into the canonical merged
// state: the order-minimal failing combination under the serial engine's
// total order (verify/parallel.cpp's combo_before), summed counters, and
// one QInfoStore holding every recorded dependency entry.  Two consumers:
//
//  * the in-process parallel runtime (verify/parallel.cpp) — workers emit
//    one partial per shard and the controller folds them as they complete;
//    the old end-of-run barrier merge is gone;
//  * the manifest-driven scan (store/scan.h) — partials are checkpointed
//    to disk (SANIPAR framing) and finalize() renders the canonical,
//    serial-shaped report from whatever mixture of processes, worker
//    counts and engines produced them.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/shard.h"
#include "util/mask.h"
#include "verify/basis.h"
#include "verify/checker.h"
#include "verify/qinfo.h"
#include "verify/types.h"

namespace sani::sched {
class CancelToken;
}

namespace sani::verify {

class Driver;

/// The serial engine's total order on combinations (depth-first: plain
/// lexicographic vector order; largest-first: sizes descending, then
/// lexicographic).  The merged witness is the minimum failing combination
/// under this order — exactly the one the serial walk would fail on first.
bool combo_before(const std::vector<int>& a, const std::vector<int>& b,
                  bool largest_first);

/// The set-level union pass over a dependency store: for every recorded
/// combination Q, folds V over all sub-combinations of Q and applies the
/// notion's set-level condition.  sorted_combos() restores the serial
/// iteration order, so the witness (the first violating Q) is independent
/// of how the store was populated.  Pure mask arithmetic end to end — no
/// backend, no DD manager — which is what lets ReportAssembler::finalize
/// run it without thawing the frozen forest.  `cancel` (optional) turns a
/// fired deadline into result.timed_out, exactly as the in-driver pass
/// does.
void union_pass(const Basis& basis, const Checker& checker,
                const QInfoStore& qinfo, sched::CancelToken* cancel,
                VerifyResult& result);

/// Outcome of one shard.  Engine-invariant fields (the failure, the
/// dependency masks, `combinations`) are what the deterministic merge
/// consumes; the counter/timing fields ride along for the informative
/// (non-deterministic) report and are zeroed by --deterministic-report.
struct PartialReport {
  int k = 0;                     // combination size of the shard
  std::uint64_t begin = 0;       // planned rank range [begin, end)
  std::uint64_t end = 0;
  /// Ranks actually checked: [begin, covered_end).  Equal to `end` when the
  /// shard ran to completion, fail_rank + 1 when it stopped at its local
  /// failure, less when it was abandoned mid-shard (in-process cancellation
  /// only — checkpoints always persist complete shards).
  std::uint64_t covered_end = 0;
  /// True when the shard's outcome is final: full coverage, or coverage up
  /// to and including its locally-first failure.
  bool complete = false;

  bool has_failure = false;
  std::uint64_t fail_rank = 0;  // rank of the locally-first failing combo
  Mask fail_alpha;
  std::string fail_reason;

  std::uint64_t combinations = 0;  // checked in this shard
  std::uint64_t coefficients = 0;
  CacheStats prefix_memo;
  CacheStats region_cache;
  double convolution_seconds = 0.0;
  double verification_seconds = 0.0;

  /// Union-check dependency record of one passing size-k combination.
  /// `row` is recomputable from the basis (see ReportAssembler::add), so
  /// the serialized form (store/manifest.h) carries only rank + V.
  struct Dep {
    std::uint64_t rank = 0;
    RowContext row;
    std::vector<Mask> V;
  };
  std::vector<Dep> deps;  // rank-ascending (shards check in rank order)
};

/// Deterministic, associative fold over PartialReports.
///
/// add() is commutative and associative in the merged *semantic* state:
/// the best failure is the minimum of an associative min (combo_before is a
/// strict total order on combinations), counters are sums, and the QInfo
/// entries of distinct shards are disjoint (each combination belongs to
/// exactly one shard), so insertion order cannot change the store's
/// contents — only the arena layout, which sorted_combos() canonicalizes
/// before the union pass reads it.  Hence any completion order, worker
/// count or engine mixture finalizes to the same report.
class ReportAssembler {
 public:
  /// `options` are the canonical semantic options of the scan (notion,
  /// order, engine, union_check, search_order...); held by value so the
  /// assembler can outlive the caller's copy.
  ReportAssembler(std::shared_ptr<const Basis> basis, VerifyOptions options);
  ~ReportAssembler();

  /// Folds one partial in.  Not thread-safe; callers serialize (the
  /// in-process controller folds under its merge mutex).
  void add(PartialReport part);

  /// Overrides the basis-derived report fields (frozen forest size, one-time
  /// base coefficients and build time) with a canonical snapshot.  The
  /// manifest scan records these at plan time, so a worker that rebuilt the
  /// basis with wider needs (a different engine's material enlarges the
  /// frozen forest) cannot perturb the finalized report.
  void set_basis_stats(std::uint64_t frozen_nodes, std::uint64_t frozen_bytes,
                       std::uint64_t base_coefficients, double build_seconds);

  bool has_failure() const { return best_.has_value(); }
  /// The order-minimal failing combination so far (valid when
  /// has_failure()).
  const std::vector<int>& failure_combo() const { return best_->combo; }
  /// The witness of the order-minimal failure, decoded against the basis.
  CounterExample failure_counterexample() const;

  const QInfoStore& qinfo() const { return qinfo_; }

  std::uint64_t combinations() const { return combinations_; }
  std::uint64_t coefficients() const { return coefficients_; }
  const CacheStats& prefix_memo() const { return prefix_memo_; }
  const CacheStats& region_cache() const { return region_cache_; }
  std::size_t parts() const { return parts_; }

  /// Renders the canonical merged result in the serial engine's report
  /// shape: counters summed, the one-time basis build credited once, the
  /// canonical phase set (thaw for the ADD engines / base / convolution /
  /// verification / union) independent of which engines produced the
  /// partials, and — when every combination passed and the notion has a
  /// set-level condition — the union pass over the merged dependency store.
  /// The result is a pure function of the folded partials and the basis
  /// content (timing fields aside, which --deterministic-report zeroes), so
  /// any run that drained the same shard plan finalizes byte-identically.
  VerifyResult finalize();

 private:
  struct BestFailure {
    std::vector<int> combo;
    Mask alpha;
    std::string reason;
  };

  struct BasisStats {
    std::uint64_t frozen_nodes;
    std::uint64_t frozen_bytes;
    std::uint64_t base_coefficients;
    double build_seconds;
  };

  std::shared_ptr<const Basis> basis_;
  VerifyOptions options_;
  std::optional<BasisStats> basis_stats_;
  std::optional<BestFailure> best_;
  QInfoStore qinfo_;
  std::uint64_t combinations_ = 0;
  std::uint64_t coefficients_ = 0;
  CacheStats prefix_memo_;
  CacheStats region_cache_;
  double convolution_seconds_ = 0.0;
  double verification_seconds_ = 0.0;
  std::size_t parts_ = 0;
};

}  // namespace sani::verify
