#pragma once
// The relation/predicate matrix T(alpha, rho) of Sec. III-C.
//
// T is a 0/1 function over the spectral coordinates that is 1 exactly where
// the Walsh spectrum W of a combination *must* vanish for the security
// notion to hold (the white areas of Fig. 2).  The interference check is
// then the existential predicate
//
//     exists alpha . T(alpha, rho) AND W(alpha, rho) AND (rho = 0)
//
// which the ADD engines evaluate as `nonzero(W) AND T != false` (the rho = 0
// constraint is folded into T).  Predicates are cached per threshold since
// the same T is reused across every combination with equal counts.

#include <map>
#include <set>
#include <vector>

#include "circuit/unfold.h"
#include "dd/bdd.h"

namespace sani::verify {

class PredicateBuilder {
 public:
  /// `joint_share_count` switches the NI/SNI region to total share counting
  /// (see VerifyOptions::joint_share_count).
  PredicateBuilder(dd::Manager& manager, const circuit::VarMap& vars,
                   bool joint_share_count = false);

  /// BDD of "every random spectral coordinate is 0".
  const dd::Bdd& rho_zero() const { return rho_zero_; }

  /// NI/SNI violation region: rho = 0 and some secret has more than
  /// `threshold` of its share coordinates selected.
  dd::Bdd ni_violation(int threshold);

  /// Probing-security violation region: rho = 0, every secret's share
  /// coordinates are selected fully or not at all, and at least one secret
  /// is fully selected.  (Partially selected groups average to zero over a
  /// uniform sharing and cannot leak the secret.)
  dd::Bdd probing_violation();

  /// PINI violation region: rho = 0 and the number of *share indices*
  /// touched outside `allowed_indices` exceeds `threshold`.
  dd::Bdd pini_violation(const std::set<int>& allowed_indices, int threshold);

  /// Symmetric helper: "at least k of `vars` are 1".
  dd::Bdd count_ge(const std::vector<int>& vars, int k);

 private:
  dd::Manager& m_;
  const circuit::VarMap& vars_;
  bool joint_;
  dd::Bdd rho_zero_;
  std::map<int, dd::Bdd> ni_cache_;
  dd::Bdd probing_cache_;
  std::map<std::pair<std::vector<int>, int>, dd::Bdd> pini_cache_;
};

}  // namespace sani::verify
