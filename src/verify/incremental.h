#pragma once
// Diff-aware incremental re-verification (cone-keyed verdict caching).
//
// A ConeSummary is the distilled outcome of one finished scan: the cone
// digest of every observable (circuit/cone_hash.h), per-size bitmaps of
// which combination ranks were checked and which passed, the per-row
// failures, and the per-combination dependency masks the set-level union
// pass consumed.  On resubmission of an edited gadget, an IncrementalPlan
// maps each new observable to its digest-equal predecessor and classifies
// every combination the enumeration visits:
//
//   * clean-pass  — all members map, the old run checked the mapped rank
//                   and it passed: replay the verdict (and splice the old
//                   dependency masks into the union store);
//   * clean-fail  — same, but it failed: replay the recorded witness;
//   * dirty       — anything else: re-check for real.
//
// Digest equality implies function equality (Merkle hashing over role-
// identified inputs), and a varmap fingerprint guards that both runs bind
// roles to the same dd variables, so a replayed verdict is exactly what a
// cold check would have computed: verdicts, witnesses and deterministic
// reports are byte-identical to a cold run (the incremental correctness
// gate in tests/incremental_test.cpp), only the work differs.  The
// dependency masks are engine-invariant (every backend accumulates the
// same semantic per-secret sets), so summaries transfer across engines.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/cone_hash.h"
#include "util/mask.h"
#include "verify/basis.h"
#include "verify/qinfo.h"
#include "verify/types.h"

namespace sani::verify {

/// Per-cone verdict summary of one scan — complete, or the checked prefix
/// of a timed-out run (unchecked ranks stay 0 in the bitmaps and classify
/// as dirty on replay).  Serialized by store/serial.h (SANISUM framing);
/// bump store::kSummaryFormatVersion on any layout change.
struct ConeSummary {
  // Semantic guards: a summary only seeds runs with identical notion
  // semantics.  (The engine is deliberately absent — verdicts and
  // dependency masks are engine-invariant.)
  Notion notion = Notion::kSNI;
  bool glitch_robust = false;
  bool joint_share_count = false;
  bool union_check = true;
  int order = 0;                   // max combination size covered
  std::uint32_t num_secrets = 0;   // width of the dependency-mask vectors
  circuit::ConeDigest varmap;      // role→variable binding fingerprint
  std::vector<circuit::ConeDigest> digests;  // per old observable

  /// Verdict bitmaps for size-k combinations, index k-1.  `present` is
  /// false when C(n, k) overflowed the bitmap cap — those sizes are always
  /// re-checked.
  struct Table {
    bool present = false;
    std::uint64_t num_ranks = 0;
    std::vector<std::uint64_t> checked;  // bit r: rank r was enumerated
    std::vector<std::uint64_t> passed;   // bit r: and its per-row check held
  };
  std::vector<Table> tables;

  /// Recorded per-row scan failure (union-pass failures are not recorded:
  /// the union pass re-runs from the replayed dependency masks).
  struct Failure {
    std::int32_t k = 0;
    std::uint64_t rank = 0;
    Mask alpha;
    std::string reason;
  };
  std::vector<Failure> failures;  // sorted by (k, rank)

  /// Per-secret dependency masks of one passing combination (QInfo::V).
  struct DepEntry {
    std::int32_t k = 0;
    std::uint64_t rank = 0;
    std::vector<Mask> V;
  };
  std::vector<DepEntry> deps;  // sorted by (k, rank)
};

/// Records per-combination outcomes during a scan (cold or incremental) so
/// a fresh summary can be written afterwards.  Parallel workers each own
/// one and the controller merges them — the bitmap unions are disjoint
/// because every combination is checked exactly once across shards.
class SummaryCollector {
 public:
  SummaryCollector(int num_observables, int order);

  void note_pass(const std::vector<int>& combo) { note(combo, true); }
  void note_fail(const std::vector<int>& combo, const Mask& alpha,
                 const std::string& reason);
  void merge_from(const SummaryCollector& other);

 private:
  friend ConeSummary make_summary(const Basis& basis,
                                  const VerifyOptions& options,
                                  SummaryCollector&& collector,
                                  const QInfoStore& deps);

  void note(const std::vector<int>& combo, bool passed);

  int n_ = 0;
  int order_ = 0;
  std::vector<ConeSummary::Table> tables_;
  std::vector<ConeSummary::Failure> failures_;
};

/// Assembles the summary of a finished scan from the basis' cone index,
/// the collected verdict bitmaps and the (merged) union-check store.
ConeSummary make_summary(const Basis& basis, const VerifyOptions& options,
                         SummaryCollector&& collector, const QInfoStore& deps);

/// Total ranks marked checked across the summary's verdict tables — the
/// coverage a seeded run can replay.  A timed-out run publishes the summary
/// of its completed prefix, but only when this count beats the family
/// head's, so republishing never shrinks coverage.
std::uint64_t summary_checked_count(const ConeSummary& summary);

/// The clean/dirty classifier one run scans against.  Immutable after
/// build(); classify() takes a caller-owned scratch vector so parallel
/// workers can share one plan without synchronization.
class IncrementalPlan {
 public:
  /// Null when `summary` cannot seed this run: the basis carries no cone
  /// index, the varmap fingerprints differ, or a semantic guard mismatches.
  /// Inequality is always safe — it only costs a cold scan.
  static std::optional<IncrementalPlan> build(
      const Basis& basis, std::shared_ptr<const ConeSummary> summary,
      const VerifyOptions& options);

  enum class Kind : std::uint8_t { kDirty, kCleanPass, kCleanFail };

  struct Classification {
    Kind kind = Kind::kDirty;
    /// Replayed dependency masks (clean-pass on union-checking runs only).
    const std::vector<Mask>* V = nullptr;
    /// Replayed witness (clean-fail).
    const ConeSummary::Failure* fail = nullptr;
  };

  /// Classifies one combination of *new* observable indices.  Thread-safe.
  Classification classify(const std::vector<int>& combo,
                          std::vector<int>& scratch) const;

  /// New observables whose digest matched an old one.
  std::uint64_t cones_reused() const { return cones_reused_; }

 private:
  std::shared_ptr<const ConeSummary> summary_;
  std::vector<std::int32_t> old_index_;  // per new observable; -1 unmatched
  std::uint64_t cones_reused_ = 0;
  int old_n_ = 0;
  bool need_deps_ = false;
  // (rank << 6 | k) lookups, the QInfoStore key convention.
  std::unordered_map<std::uint64_t, const ConeSummary::Failure*> failures_;
  std::unordered_map<std::uint64_t, const ConeSummary::DepEntry*> deps_;
};

/// What the engine layer threads through to the Driver(s): an optional
/// plan to replay against, an optional collector for the fresh summary,
/// and an optional sink for the merged union-check dependency store.
struct IncrementalContext {
  const IncrementalPlan* plan = nullptr;
  SummaryCollector* collector = nullptr;
  QInfoStore* deps_out = nullptr;
};

}  // namespace sani::verify
