#include "verify/heuristic.h"

#include <set>
#include <vector>

#include "dd/anf.h"
#include "sched/cancel.h"
#include "util/combinations.h"
#include "obs/clock.h"
#include "verify/checker.h"

namespace sani::verify {

namespace {

/// Applies optimistic sampling until fixpoint: removes expressions of the
/// form r XOR g where random r occurs in no other expression of the tuple.
void simplify(std::vector<dd::Bdd>& exprs, const Mask& random_vars,
              dd::Manager& m) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Mask> supports;
    supports.reserve(exprs.size());
    for (const auto& e : exprs) supports.push_back(e.support());

    for (std::size_t i = 0; i < exprs.size() && !changed; ++i) {
      Mask own_randoms = supports[i] & random_vars;
      Mask others;
      for (std::size_t j = 0; j < exprs.size(); ++j)
        if (j != i) others |= supports[j];
      Mask candidates = own_randoms - others;
      bool removed = false;
      candidates.for_each_bit([&](int r) {
        if (removed) return;
        // e = r XOR g  <=>  e XOR r does not depend on r.
        dd::Bdd g = exprs[i] ^ dd::Bdd::var(m, r);
        if (!g.support().test(r)) {
          exprs.erase(exprs.begin() + static_cast<std::ptrdiff_t>(i));
          removed = true;
        }
      });
      if (removed) changed = true;
    }
  }
}

/// Exact decision for all-affine tuples — the reason maskVerif is "sound
/// and complete for linear systems".  Extracts each expression's linear
/// form, Gaussian-eliminates the random coordinates (a pivot row is masked
/// by a fresh uniform random, hence simulatable and droppable), and decides
/// the notion from the random-free residual span.
/// Returns true if it decided (writing the verdict to *secure).
bool decide_affine_exact(const std::vector<dd::Bdd>& exprs,
                         const circuit::VarMap& vars, const Checker& checker,
                         const RowContext& row, dd::Manager& m,
                         bool* secure) {
  for (const auto& e : exprs)
    if (dd::algebraic_degree(e) > 1) return false;

  // Linear coefficient vectors: coeff(v) = e(e_v) XOR e(0).
  std::vector<Mask> rows;
  for (const auto& e : exprs) {
    const bool c0 = e.eval(Mask{});
    Mask coeffs;
    e.support().for_each_bit([&](int v) {
      if (e.eval(Mask::bit(v)) != c0) coeffs.set(v);
    });
    rows.push_back(coeffs);
  }

  // Eliminate random coordinates.
  vars.random_vars.for_each_bit([&](int r) {
    std::size_t pivot = rows.size();
    for (std::size_t i = 0; i < rows.size(); ++i)
      if (rows[i].test(r)) {
        pivot = i;
        break;
      }
    if (pivot == rows.size()) return;
    for (std::size_t i = 0; i < rows.size(); ++i)
      if (i != pivot && rows[i].test(r)) rows[i] ^= rows[pivot];
    rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(pivot));
  });
  // Drop zero rows; what remains is the deterministic leakage span.
  std::vector<Mask> basis;
  for (const Mask& r : rows)
    if ((r & (vars.share_vars | vars.public_vars)).any()) basis.push_back(r);

  if (checker.notion() == Notion::kProbing) {
    if (basis.size() > 20) return false;  // combo enumeration too wide
    // Leak iff some nonzero combination's share support is a nonempty union
    // of COMPLETE groups (partial groups average out over the sharing).
    for (std::uint64_t sel = 1; sel < (std::uint64_t{1} << basis.size());
         ++sel) {
      Mask combo;
      for (std::size_t i = 0; i < basis.size(); ++i)
        if ((sel >> i) & 1) combo ^= basis[i];
      bool some_full = false;
      bool all_clean = true;
      for (const Mask& group : vars.secret_vars) {
        const Mask touched = combo & group;
        if (touched.empty()) continue;
        if (touched != group) {
          all_clean = false;
          break;
        }
        some_full = true;
      }
      if (all_clean && some_full) {
        *secure = false;
        return true;
      }
    }
    *secure = true;
    return true;
  }

  // NI / SNI / PINI: the dependency set is exactly the span's support union
  // (each basis row is itself an observable combination).
  std::vector<Mask> V(vars.secret_vars.size());
  for (const Mask& r : basis)
    for (std::size_t i = 0; i < V.size(); ++i)
      V[i] |= r & vars.secret_vars[i];
  *secure = !checker.union_violates(V, row, nullptr);
  (void)m;
  return true;
}

}  // namespace

HeuristicResult verify_heuristic_prepared(const circuit::Unfolded& unfolded,
                                          const ObservableSet& obs,
                                          const VerifyOptions& options) {
  Stopwatch watch;
  HeuristicResult result;
  dd::Manager& m = *unfolded.manager;
  const circuit::VarMap& vars = unfolded.vars;
  const Checker checker(vars, options.notion, options.joint_share_count);
  const int N = static_cast<int>(obs.size());

  sched::CancelToken deadline;
  if (options.time_limit > 0) deadline.set_deadline_after(options.time_limit);

  for (int k = options.order; k >= 1; --k) {
    CombinationIter it(N, k);
    if (!it.valid()) continue;
    do {
      if (deadline.expired()) {
        result.timed_out = true;
        deadline.acknowledge();
        result.seconds = watch.seconds();
        return result;
      }
      ++result.combinations;
      const auto& combo = it.indices();

      RowContext row;
      row.num_observables = k;
      std::vector<dd::Bdd> exprs;
      for (int i : combo) {
        const Observable& o = obs.items[i];
        if (o.kind == Observable::Kind::kOutput) {
          ++row.num_outputs;
          row.output_indices.insert(o.output_share_index);
        } else {
          ++row.num_internal;
        }
        exprs.insert(exprs.end(), o.fns.begin(), o.fns.end());
      }

      simplify(exprs, vars.random_vars, m);

      // All-affine residual tuples are decided exactly (linear algebra) —
      // the completeness-on-linear-systems property maskVerif documents.
      bool exact_secure = false;
      if (decide_affine_exact(exprs, vars, checker, row, m, &exact_secure)) {
        if (!exact_secure) ++result.inconclusive;
        continue;
      }

      Mask support;
      for (const auto& e : exprs) support |= e.support();

      bool proved = true;
      switch (options.notion) {
        case Notion::kProbing:
          for (const auto& group : vars.secret_vars)
            if ((support & group) == group && !group.empty()) proved = false;
          break;
        case Notion::kNI:
        case Notion::kSNI: {
          const int t = options.notion == Notion::kNI ? row.num_observables
                                                      : row.num_internal;
          if (options.joint_share_count) {
            if ((support & vars.share_vars).popcount() > t) proved = false;
          } else {
            for (const auto& group : vars.secret_vars)
              if ((support & group).popcount() > t) proved = false;
          }
          break;
        }
        case Notion::kPINI: {
          std::set<int> touched;
          for (std::size_t i = 0; i < vars.secret_share_var.size(); ++i)
            for (std::size_t j = 0; j < vars.secret_share_var[i].size(); ++j)
              if (support.test(vars.secret_share_var[i][j]))
                touched.insert(static_cast<int>(j));
          int extra = 0;
          for (int j : touched)
            if (!row.output_indices.count(j)) ++extra;
          if (extra > row.num_internal) proved = false;
          break;
        }
      }
      if (!proved) ++result.inconclusive;
    } while (it.next());
  }

  result.proven_secure = result.inconclusive == 0;
  result.seconds = watch.seconds();
  return result;
}

HeuristicResult verify_heuristic(const circuit::Gadget& gadget,
                                 const VerifyOptions& options) {
  circuit::Unfolded unfolded = circuit::unfold(gadget, options.cache_bits);
  ObservableSet obs = build_observables(gadget, unfolded, options.probes);
  return verify_heuristic_prepared(unfolded, obs, options);
}

}  // namespace sani::verify
