#include "verify/bruteforce.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "circuit/cone.h"
#include "sched/cancel.h"
#include "util/combinations.h"
#include "verify/checker.h"
#include "verify/observables.h"

namespace sani::verify {

namespace {

using circuit::GateKind;
using circuit::WireId;

struct BruteObservable {
  Observable::Kind kind;
  std::vector<WireId> members;  // wires whose values the adversary sees
  int output_share_index = -1;
  std::vector<std::string> names;
};

struct BruteUniverse {
  // Truth table of every wire, bit x = value at input assignment x.
  std::vector<std::vector<std::uint64_t>> table;
  std::vector<BruteObservable> observables;

  int num_inputs = 0;
  std::vector<int> share_positions;          // input position -> is share?
  std::vector<Mask> secret_pos;              // per secret: input-position mask
  std::vector<std::vector<int>> secret_share_pos;  // [secret][index] -> pos
  Mask share_pos_all;
  Mask random_pos;
  Mask public_pos;

  bool wire_bit(WireId w, std::size_t x) const {
    return (table[w][x >> 6] >> (x & 63)) & 1;
  }
};

BruteUniverse build_universe(const circuit::Gadget& gadget,
                             const ProbeModelOptions& probes) {
  const circuit::Netlist& nl = gadget.netlist;
  const std::vector<WireId> inputs = nl.inputs();
  const int n = static_cast<int>(inputs.size());
  if (n > 22)
    throw std::invalid_argument("verify_bruteforce: too many inputs");

  BruteUniverse u;
  u.num_inputs = n;
  const std::size_t size = std::size_t{1} << n;
  const std::size_t words = (size + 63) / 64;
  u.table.assign(nl.num_wires(), std::vector<std::uint64_t>(words, 0));

  std::vector<bool> in_bits(static_cast<std::size_t>(n));
  for (std::size_t x = 0; x < size; ++x) {
    for (int i = 0; i < n; ++i) in_bits[i] = (x >> i) & 1;
    const std::vector<bool> values = nl.evaluate(in_bits);
    for (WireId w = 0; w < nl.num_wires(); ++w)
      if (values[w]) u.table[w][x >> 6] |= std::uint64_t{1} << (x & 63);
  }

  // Input positions by role.
  std::map<WireId, int> pos;
  for (int i = 0; i < n; ++i) pos[inputs[i]] = i;
  for (const auto& g : gadget.spec.secrets) {
    Mask m;
    std::vector<int> ps;
    for (WireId w : g.shares) {
      m.set(pos.at(w));
      ps.push_back(pos.at(w));
    }
    u.share_pos_all |= m;
    u.secret_pos.push_back(m);
    u.secret_share_pos.push_back(std::move(ps));
  }
  for (WireId w : gadget.spec.randoms) u.random_pos.set(pos.at(w));
  for (WireId w : gadget.spec.publics) u.public_pos.set(pos.at(w));

  // Observables: outputs first, then probes (same policy as observables.cpp).
  std::set<std::vector<std::vector<std::uint64_t>>> seen;
  auto signature = [&](const std::vector<WireId>& members) {
    std::vector<std::vector<std::uint64_t>> sig;
    for (WireId w : members) sig.push_back(u.table[w]);
    std::sort(sig.begin(), sig.end());
    return sig;
  };

  for (const auto& g : gadget.spec.outputs)
    for (std::size_t j = 0; j < g.shares.size(); ++j) {
      BruteObservable o;
      o.kind = Observable::Kind::kOutput;
      o.members = {g.shares[j]};
      o.output_share_index = static_cast<int>(j);
      o.names = {nl.node(g.shares[j]).name};
      if (probes.dedupe && !seen.insert(signature(o.members)).second)
        continue;
      u.observables.push_back(std::move(o));
    }

  std::vector<std::vector<WireId>> cones;
  if (probes.glitch_robust) cones = circuit::glitch_cones(nl);

  for (WireId w = 0; w < nl.num_wires(); ++w) {
    const GateKind kind = nl.node(w).kind;
    if (kind == GateKind::kConst0 || kind == GateKind::kConst1) continue;
    if (kind == GateKind::kInput && !probes.include_inputs) continue;
    // Output wires stay probe-able (see observables.cpp): deduplicated in
    // the standard model, strictly more revealing under glitches.
    BruteObservable o;
    o.kind = Observable::Kind::kProbe;
    o.members = probes.glitch_robust ? cones[w] : std::vector<WireId>{w};
    if (o.members.empty()) continue;
    o.names = {nl.node(w).name};
    // Constant probe functions carry no information.
    if (o.members.size() == 1) {
      const auto& t = u.table[o.members[0]];
      bool all0 = true, all1 = true;
      const std::size_t sz = std::size_t{1} << n;
      for (std::size_t x = 0; x < sz; ++x) {
        if (u.wire_bit(o.members[0], x)) all0 = false;
        else all1 = false;
        (void)t;
      }
      if (all0 || all1) continue;
    }
    if (probes.dedupe && !seen.insert(signature(o.members)).second) continue;
    u.observables.push_back(std::move(o));
  }
  return u;
}

/// Bits of `x` selected by `mask`, compacted into a small integer.
std::size_t compact(std::size_t x, const Mask& mask, int num_bits) {
  std::size_t out = 0;
  int k = 0;
  for (int i = 0; i < num_bits; ++i)
    if (mask.test(i)) {
      out |= ((x >> i) & 1) << k;
      ++k;
    }
  return out;
}

}  // namespace

VerifyResult verify_bruteforce(const circuit::Gadget& gadget,
                               const VerifyOptions& options) {
  const BruteUniverse u = build_universe(gadget, options.probes);
  const int n = u.num_inputs;
  const std::size_t size = std::size_t{1} << n;

  VerifyResult result;
  result.stats.num_observables = u.observables.size();
  const int N = static_cast<int>(u.observables.size());

  const Mask cond_mask = u.share_pos_all | u.public_pos;
  const int cond_bits = cond_mask.popcount();
  if (cond_bits > 24)
    throw std::invalid_argument("verify_bruteforce: too many share bits");

  // Map compact conditioning index bit -> original position (for dependency
  // extraction).
  std::vector<int> cond_positions;
  for (int i = 0; i < n; ++i)
    if (cond_mask.test(i)) cond_positions.push_back(i);

  const int num_secret_bits = static_cast<int>(u.secret_pos.size());

  sched::CancelToken deadline;
  if (options.time_limit > 0) deadline.set_deadline_after(options.time_limit);

  for (int k = options.order; k >= 1; --k) {
    CombinationIter it(N, k);
    if (!it.valid()) continue;
    do {
      // Per-combination deadline poll: a timeout fires mid-enumeration and
      // returns the partial-progress result (sani exit code 2).
      if (deadline.expired()) {
        result.timed_out = true;
        deadline.acknowledge();
        return result;
      }
      ++result.stats.combinations;
      const auto& combo = it.indices();

      RowContext row;
      row.num_observables = k;
      std::vector<WireId> members;
      for (int i : combo) {
        const BruteObservable& o = u.observables[i];
        if (o.kind == Observable::Kind::kOutput) {
          ++row.num_outputs;
          row.output_indices.insert(o.output_share_index);
        } else {
          ++row.num_internal;
        }
        members.insert(members.end(), o.members.begin(), o.members.end());
      }
      if (members.size() > 16)
        throw std::invalid_argument(
            "verify_bruteforce: observation tuple too wide");
      const std::size_t tuple_size = std::size_t{1} << members.size();

      auto fail = [&](const std::string& reason) {
        result.secure = false;
        CounterExample ce;
        for (int i : combo)
          for (const auto& nm : u.observables[i].names)
            ce.observables.push_back(nm);
        ce.reason = reason;
        result.counterexample = std::move(ce);
      };

      if (options.notion == Notion::kProbing) {
        // Distribution conditioned on the secrets AND the public inputs
        // (the adversary knows the publics; only randoms and the sharing
        // itself are averaged).  Independence must hold within every public
        // setting, across secret settings.
        const int num_public_bits = u.public_pos.popcount();
        std::vector<std::vector<std::uint32_t>> counts(
            std::size_t{1} << (num_secret_bits + num_public_bits),
            std::vector<std::uint32_t>(tuple_size, 0));
        for (std::size_t x = 0; x < size; ++x) {
          std::size_t t = 0;
          for (std::size_t j = 0; j < members.size(); ++j)
            t |= static_cast<std::size_t>(u.wire_bit(members[j], x)) << j;
          std::size_t s = 0;
          for (int b = 0; b < num_secret_bits; ++b) {
            bool bit = false;
            u.secret_pos[b].for_each_bit([&](int p) { bit ^= (x >> p) & 1; });
            s |= static_cast<std::size_t>(bit) << b;
          }
          s |= compact(x, u.public_pos, n) << num_secret_bits;
          ++counts[s][t];
        }
        const std::size_t secret_space = std::size_t{1} << num_secret_bits;
        for (std::size_t pub = 0;
             pub < (std::size_t{1} << num_public_bits); ++pub)
          for (std::size_t s = 1; s < secret_space; ++s)
            if (counts[pub * secret_space + s] !=
                counts[pub * secret_space]) {
              fail("observed distribution depends on the secrets");
              return result;
            }
        continue;
      }

      // Distribution conditioned on shares (and publics); randoms averaged.
      std::vector<std::vector<std::uint32_t>> counts(
          std::size_t{1} << cond_bits,
          std::vector<std::uint32_t>(tuple_size, 0));
      for (std::size_t x = 0; x < size; ++x) {
        std::size_t t = 0;
        for (std::size_t j = 0; j < members.size(); ++j)
          t |= static_cast<std::size_t>(u.wire_bit(members[j], x)) << j;
        ++counts[compact(x, cond_mask, n)][t];
      }

      // Exact dependency set: a conditioning bit matters iff flipping it
      // changes some conditional distribution.
      Mask V;
      for (std::size_t cb = 0; cb < cond_positions.size(); ++cb) {
        const std::size_t flip = std::size_t{1} << cb;
        bool depends = false;
        for (std::size_t c = 0; c < counts.size() && !depends; ++c)
          if ((c & flip) == 0 && counts[c] != counts[c | flip]) depends = true;
        if (depends) V.set(cond_positions[cb]);
      }

      std::vector<Mask> per_secret(u.secret_pos.size());
      for (std::size_t i = 0; i < u.secret_pos.size(); ++i)
        per_secret[i] = V & u.secret_pos[i];

      switch (options.notion) {
        case Notion::kNI:
        case Notion::kSNI: {
          const int t = options.notion == Notion::kNI ? row.num_observables
                                                      : row.num_internal;
          if (options.joint_share_count) {
            const int total = (V & u.share_pos_all).popcount();
            if (total > t) {
              fail("joint distribution depends on " + std::to_string(total) +
                   " input shares in total (allowed: " + std::to_string(t) +
                   ")");
              return result;
            }
            break;
          }
          for (std::size_t i = 0; i < per_secret.size(); ++i)
            if (per_secret[i].popcount() > t) {
              fail("joint distribution depends on " +
                   std::to_string(per_secret[i].popcount()) +
                   " shares of secret " + std::to_string(i) +
                   " (allowed: " + std::to_string(t) + ")");
              return result;
            }
          break;
        }
        case Notion::kPINI: {
          std::set<int> touched;
          for (std::size_t i = 0; i < u.secret_share_pos.size(); ++i)
            for (std::size_t j = 0; j < u.secret_share_pos[i].size(); ++j)
              if (V.test(u.secret_share_pos[i][j]))
                touched.insert(static_cast<int>(j));
          int extra = 0;
          for (int j : touched)
            if (!row.output_indices.count(j)) ++extra;
          if (extra > row.num_internal) {
            fail("observations touch " + std::to_string(extra) +
                 " share indices beyond the probed outputs");
            return result;
          }
          break;
        }
        case Notion::kProbing:
          break;  // handled above
      }
    } while (it.next());
  }
  return result;
}

}  // namespace sani::verify
