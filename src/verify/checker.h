#pragma once
// Spectral security conditions (per-coefficient and set-level).
//
// Shared by the scan engines (LIL/MAP iterate coefficients directly) and by
// the driver's set-level union pass.  The ADD engines express the same
// per-coefficient conditions as predicate BDDs (predicate.h); tests assert
// the two formulations agree coefficient-by-coefficient.

#include <set>
#include <string>
#include <vector>

#include "circuit/unfold.h"
#include "util/mask.h"
#include "verify/types.h"

namespace sani::verify {

/// The composition of the combination under check.
struct RowContext {
  int num_observables = 0;  // |Q|
  int num_outputs = 0;      // output shares in Q
  int num_internal = 0;     // internal probes in Q
  std::set<int> output_indices;  // share indices of probed outputs (PINI)
};

class Checker {
 public:
  /// `joint_share_count` switches NI/SNI from per-input share counting
  /// (standard) to total counting (the paper's Fig. 2 T-matrix).
  Checker(const circuit::VarMap& vars, Notion notion,
          bool joint_share_count = false);

  Notion notion() const { return notion_; }
  bool joint_share_count() const { return joint_; }

  /// Share-count threshold of the per-row check: |Q| for NI, #internal for
  /// SNI.  (Probing and PINI use their own predicates.)
  int threshold(const RowContext& row) const;

  /// True if a nonzero coefficient at `alpha` violates the notion for a
  /// combination with composition `row`.  Coefficients with a random
  /// coordinate set never violate (they vanish in the averaged
  /// distribution).
  bool coefficient_violates(const Mask& alpha, const RowContext& row) const;

  /// Set-level check on the accumulated dependency sets V[i] (union of
  /// share supports per secret over every sub-combination of Q).  Fills
  /// `reason` on violation.  Probing security has no set-level component.
  bool union_violates(const std::vector<Mask>& V, const RowContext& row,
                      std::string* reason) const;

  const Mask& random_vars() const { return vars_.random_vars; }
  const std::vector<Mask>& secret_vars() const { return vars_.secret_vars; }

 private:
  /// Count of share indices touched by `bits` outside the allowed set.
  int disallowed_indices(const Mask& bits,
                         const std::set<int>& allowed) const;

  const circuit::VarMap& vars_;
  Notion notion_;
  bool joint_;
  std::vector<Mask> index_vars_;  // I_j: share vars with index j, any secret
};

/// Explicit enumeration of the forbidden region — the nonzero support of
/// the relation matrix T(alpha, rho) of Sec. III-C.
///
/// The paper's scan engines (LIL, MAP) verify a combination by *multiplying
/// W with T*: every coordinate where T is 1 is looked up in the spectrum
/// container.  The region lives in the rho = 0 slice and spans the share
/// coordinates (plus any public coordinates the circuit actually uses), so
/// its size is ~2^#shares per combination — cheap for DOM-style gadgets
/// with few shares, and the exponential verification cost the paper observed
/// on Keccak (5 secrets).  The ADD engines (MAPI, FUJITA) replace this
/// enumeration with a symbolic product, which is the paper's speedup.
class ForbiddenRegion {
 public:
  /// `extra_vars`: public coordinates that can occur in spectra (publics in
  /// the support of some observable); share coordinates are always included.
  ForbiddenRegion(const Checker& checker, const circuit::VarMap& vars,
                  const RowContext& row, const Mask& extra_vars);

  /// Number of cells of the enumeration space (2^bits).
  std::uint64_t space_size() const {
    return std::uint64_t{1} << positions_.size();
  }

  /// Visits every forbidden coordinate; `lookup(alpha)` returns true when
  /// the spectrum is nonzero there.  Returns true and fills `witness` on the
  /// first hit.  `visited` (optional) accumulates the number of lookups.
  template <typename Lookup>
  bool find_violation(Lookup&& lookup, Mask* witness,
                      std::uint64_t* visited = nullptr) const {
    const std::uint64_t cells = space_size();
    for (std::uint64_t idx = 0; idx < cells; ++idx) {
      if (!forbidden(idx)) continue;
      Mask alpha = expand(idx);
      if (visited) ++*visited;
      if (lookup(alpha)) {
        *witness = alpha;
        return true;
      }
    }
    return false;
  }

  /// True if the region is empty by construction (thresholds unreachable).
  bool empty() const;

 private:
  bool forbidden(std::uint64_t idx) const;
  Mask expand(std::uint64_t idx) const;

  RowContext row_;  // by value: cached regions outlive the caller's row
  std::vector<int> positions_;  // compact bit -> dd variable
  std::vector<std::uint64_t> group_compact_;  // per secret
  std::uint64_t shares_compact_ = 0;
  std::vector<std::uint64_t> index_compact_;  // per share index (PINI)
  Notion notion_;
  bool joint_;
  int threshold_ = 0;
};

}  // namespace sani::verify
