#include "verify/basis.h"

#include "util/timer.h"
#include "verify/backends/registry.h"

namespace sani::verify {

std::shared_ptr<const Basis> build_basis(const circuit::Unfolded& unfolded,
                                         const ObservableSet& observables,
                                         const BasisNeeds& needs) {
  Stopwatch watch;
  auto basis = std::make_shared<Basis>();
  basis->vars = unfolded.vars;
  basis->num_outputs = observables.num_outputs;
  basis->obs.reserve(observables.items.size());

  Mask used;
  for (const auto& o : observables.items) {
    ObservableInfo info;
    info.kind = o.kind;
    info.name = o.name;
    info.output_group = o.output_group;
    info.output_share_index = o.output_share_index;
    info.num_subsets = (std::size_t{1} << o.fns.size()) - 1;
    basis->obs.push_back(std::move(info));

    for (const auto& f : o.fns) used |= f.support();

    if (!needs.spectra) continue;
    std::vector<spectral::Spectrum> subsets;
    subsets.reserve((std::size_t{1} << o.fns.size()) - 1);
    for_each_xor_subset(o, *unfolded.manager, [&](const dd::Bdd& x) {
      subsets.push_back(spectral::Spectrum::from_bdd(x));
      basis->base_coefficients += subsets.back().nonzero_count();
    });
    if (needs.lil) {
      std::vector<spectral::LilSpectrum> lil;
      lil.reserve(subsets.size());
      for (const auto& s : subsets)
        lil.push_back(spectral::LilSpectrum::from_spectrum(s));
      basis->lil.push_back(std::move(lil));
    }
    basis->spectra.push_back(std::move(subsets));
  }
  // Public coordinates can only appear in spectra if some observable's
  // function touches them; the scan engines' relation vector is restricted
  // to that slice.
  basis->relevant_publics = used & unfolded.vars.public_vars;
  basis->build_seconds = watch.seconds();
  return basis;
}

std::shared_ptr<const Basis> build_basis(const circuit::Unfolded& unfolded,
                                         const ObservableSet& observables,
                                         EngineKind engine) {
  const BackendInfo& info = backend_info(engine);
  BasisNeeds needs;
  needs.spectra = info.needs_spectra;
  needs.lil = info.needs_lil;
  return build_basis(unfolded, observables, needs);
}

}  // namespace sani::verify
