#include "verify/basis.h"

#include "dd/add.h"
#include "dd/walsh.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "verify/backends/registry.h"

namespace sani::verify {

std::shared_ptr<const Basis> build_basis(const circuit::Unfolded& unfolded,
                                         const ObservableSet& observables,
                                         const BasisNeeds& needs) {
  obs::Span span("basis_build");
  Stopwatch watch;
  auto basis = std::make_shared<Basis>();
  basis->vars = unfolded.vars;
  basis->num_outputs = observables.num_outputs;
  basis->obs.reserve(observables.items.size());
  if (observables.digests.size() == observables.items.size()) {
    basis->cones.available = true;
    basis->cones.digests = observables.digests;
    basis->cones.varmap = observables.varmap;
  }

  const bool subset_walk =
      needs.spectra || needs.frozen_fns || needs.frozen_spectra;
  // Handles keep the to-be-frozen roots alive across GC safe points until
  // export_forest snapshots them; `roots` records the NodeIds in the order
  // the index tables refer to them.
  std::vector<dd::Bdd> fn_handles;
  std::vector<dd::Add> spectrum_handles;
  std::vector<dd::NodeId> roots;

  Mask used;
  for (const auto& o : observables.items) {
    ObservableInfo info;
    info.kind = o.kind;
    info.name = o.name;
    info.output_group = o.output_group;
    info.output_share_index = o.output_share_index;
    info.num_subsets = (std::size_t{1} << o.fns.size()) - 1;
    for (const auto& f : o.fns) info.support |= f.support();
    used |= info.support;
    basis->obs.push_back(std::move(info));

    if (!subset_walk) continue;
    const std::size_t num_subsets = (std::size_t{1} << o.fns.size()) - 1;
    std::vector<spectral::FlatSpectrum> subsets;
    std::vector<std::size_t> fn_roots;
    std::vector<std::size_t> spectrum_roots;
    if (needs.spectra) subsets.reserve(num_subsets);
    if (needs.frozen_fns) fn_roots.reserve(num_subsets);
    if (needs.frozen_spectra) spectrum_roots.reserve(num_subsets);
    for_each_xor_subset(o, *unfolded.manager, [&](const dd::Bdd& x) {
      if (needs.frozen_fns) {
        fn_roots.push_back(roots.size());
        roots.push_back(x.node());
        fn_handles.push_back(x);
      }
      if (needs.spectra || needs.frozen_spectra) {
        // One Walsh transform serves both representations: the flat entries
        // are enumerated from the spectrum ADD, and the same (already
        // reduced) diagram is frozen for the MAPI verification step — no
        // map -> ADD rebuild.
        dd::Add w = dd::walsh_transform(x);
        if (needs.spectra) {
          subsets.push_back(spectral::FlatSpectrum::from_add(
              w, unfolded.vars.num_vars));
          basis->base_coefficients += subsets.back().nonzero_count();
        }
        if (needs.frozen_spectra) {
          spectrum_roots.push_back(roots.size());
          roots.push_back(w.node());
          spectrum_handles.push_back(std::move(w));
        }
      }
    });
    if (needs.lil) {
      std::vector<spectral::LilSpectrum> lil;
      lil.reserve(subsets.size());
      for (const auto& s : subsets)
        lil.push_back(spectral::LilSpectrum::from_flat(s));
      basis->lil.push_back(std::move(lil));
    }
    if (needs.spectra) basis->flat.push_back(std::move(subsets));
    if (needs.frozen_fns) basis->frozen_fn_roots.push_back(std::move(fn_roots));
    if (needs.frozen_spectra)
      basis->frozen_spectrum_roots.push_back(std::move(spectrum_roots));
  }
  if (!roots.empty()) {
    obs::Span freeze_span("freeze");
    basis->frozen = unfolded.manager->export_forest(roots);
  }
  // Public coordinates can only appear in spectra if some observable's
  // function touches them; the scan engines' relation vector is restricted
  // to that slice.
  basis->relevant_publics = used & unfolded.vars.public_vars;
  basis->build_seconds = watch.seconds();
  return basis;
}

BasisNeeds all_engine_needs() {
  BasisNeeds needs;
  needs.spectra = false;
  for (const BackendInfo& info : backend_registry()) {
    needs.spectra = needs.spectra || info.needs_spectra;
    needs.lil = needs.lil || info.needs_lil;
    needs.frozen_fns = needs.frozen_fns || info.frozen_fns;
    needs.frozen_spectra = needs.frozen_spectra || info.frozen_spectra;
  }
  return needs;
}

std::shared_ptr<const Basis> build_basis(const circuit::Unfolded& unfolded,
                                         const ObservableSet& observables,
                                         EngineKind engine) {
  // The portfolio resolves its engine from predictors computed over the
  // built Basis, so a kAuto build must serve whichever engine wins: carry
  // the union of every backend's needs.
  if (engine == EngineKind::kAuto)
    return build_basis(unfolded, observables, all_engine_needs());
  const BackendInfo& info = backend_info(engine);
  BasisNeeds needs;
  needs.spectra = info.needs_spectra;
  needs.lil = info.needs_lil;
  needs.frozen_fns = info.frozen_fns;
  needs.frozen_spectra = info.frozen_spectra;
  return build_basis(unfolded, observables, needs);
}

}  // namespace sani::verify
