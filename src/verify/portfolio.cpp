#include "verify/portfolio.h"

#include <algorithm>
#include <cmath>

#include "util/combinations.h"

namespace sani::verify {

namespace {

// Cost-model constants, calibrated on the committed bench_table1 gadget set
// (see DESIGN.md Sec. 12 for the measured decision table).  They encode
// relative per-unit costs, not absolute times, so the decisions are stable
// across machines.

// Relative cost of one make()/cache probe in the per-row ADD rebuild vs one
// binary-search probe of a materialized region cell.
constexpr double kAddCostFactor = 6.0;
// Row-size pivot between the LIL list container and the flat merge path:
// below it the sorted-list insertion convolution is as good as the merge
// kernel and the simpler container wins by constant factor.
constexpr double kLilRowPivot = 48.0;
// Cap on the modelled region cell count (2^share_positions explodes long
// before the checker would materialize such a region).
constexpr double kMaxRegionBits = 30.0;

double exp2_capped(double bits, double cap) {
  return std::exp2(std::min(bits, cap));
}

}  // namespace

Predictors compute_predictors(const Basis& basis,
                              const VerifyOptions& options) {
  Predictors p;
  p.observables = basis.size();
  p.order = options.order;
  p.num_vars = basis.vars.num_vars;
  p.combinations = count_combinations_up_to(static_cast<int>(basis.size()),
                                            options.order);
  p.base_coefficients = basis.base_coefficients;
  p.share_positions = static_cast<std::uint64_t>(
      basis.vars.share_vars.popcount());
  p.frozen_nodes = basis.frozen.node_count();
  for (const ObservableInfo& o : basis.obs) {
    p.total_subsets += o.num_subsets;
    p.max_cone_width = std::max<std::uint64_t>(p.max_cone_width,
                                               o.num_subsets);
  }
  if (p.total_subsets > 0)
    p.mean_spectrum_size = static_cast<double>(p.base_coefficients) /
                           static_cast<double>(p.total_subsets);
  p.density = p.mean_spectrum_size /
              exp2_capped(static_cast<double>(p.num_vars), 40.0);
  return p;
}

EngineKind choose_engine(const Predictors& p) {
  // Predicted size of a fully convolved row: each of the `order` convolution
  // steps multiplies supports, bounded by the cube over all variables.
  double row = std::max(1.0, p.mean_spectrum_size);
  for (int k = 1; k < p.order; ++k)
    row = std::min(row * std::max(1.0, p.mean_spectrum_size),
                   exp2_capped(static_cast<double>(p.num_vars), 40.0));

  // Scan verification cost per combination: one sorted-row probe per cell
  // of the materialized forbidden region, whose size scales with the number
  // of share positions the notion forbids.
  const double region_cells =
      exp2_capped(static_cast<double>(p.share_positions), kMaxRegionBits);
  const double scan_cost = region_cells * std::log2(row + 2.0);

  // ADD verification cost per combination: rebuild the row diagram (~one
  // make()/cache probe per entry per level) and multiply against the
  // predicate — the region never gets materialized.
  const double add_cost =
      row * static_cast<double>(p.num_vars + 1) * kAddCostFactor;

  if (add_cost < scan_cost) return EngineKind::kMAPI;
  // Among the scan engines: tiny rows favor the simple sorted-list
  // container, larger rows the flat merge kernel with binary-search checks.
  return row <= kLilRowPivot ? EngineKind::kLIL : EngineKind::kMAP;
}

int suggest_cache_bits(const Predictors& p, int ceiling) {
  // Size the computed table to the expected diagram traffic: thawing the
  // frozen forest plus per-combination rebuilds touch a few slots per node
  // and per coefficient.  A fixed 2^18-entry table costs ~0.5 ms just to
  // zero — more than an entire small-gadget verification.
  const double work = static_cast<double>(p.frozen_nodes) * 4.0 +
                      static_cast<double>(p.base_coefficients) +
                      static_cast<double>(p.num_vars) * 64.0 + 1024.0;
  const int bits = static_cast<int>(std::ceil(std::log2(work)));
  return std::clamp(bits, 10, std::max(10, ceiling));
}

int suggest_unfold_cache_bits(const circuit::Gadget& gadget, int ceiling) {
  // Before any Basis exists, only netlist structure is available: unfolding
  // performs O(gates) apply operations, each touching O(live nodes) cache
  // slots, with live nodes roughly gates * inputs for these workloads.
  const circuit::NetlistStats s = gadget.netlist.stats();
  const double work = static_cast<double>(s.num_gates) *
                          static_cast<double>(s.num_inputs + 1) * 16.0 +
                      1024.0;
  const int bits = static_cast<int>(std::ceil(std::log2(work)));
  return std::clamp(bits, 10, std::max(10, ceiling));
}

PortfolioStats make_portfolio_stats(const Predictors& p,
                                    const VerifyOptions& resolved) {
  PortfolioStats s;
  s.active = true;
  s.chosen = resolved.engine;
  s.cache_bits = resolved.cache_bits;
  s.observables = p.observables;
  s.combinations = p.combinations;
  s.base_coefficients = p.base_coefficients;
  s.max_cone_width = p.max_cone_width;
  s.share_positions = p.share_positions;
  s.mean_spectrum_size = p.mean_spectrum_size;
  s.density = p.density;
  return s;
}

VerifyOptions resolve_portfolio(const Basis& basis,
                                const VerifyOptions& options,
                                PortfolioStats* out_stats) {
  if (options.engine != EngineKind::kAuto) return options;
  const Predictors p = compute_predictors(basis, options);
  VerifyOptions resolved = options;
  resolved.engine = choose_engine(p);
  resolved.cache_bits = suggest_cache_bits(p, options.cache_bits);
  if (out_stats) *out_stats = make_portfolio_stats(p, resolved);
  return resolved;
}

}  // namespace sani::verify
