#include "verify/report.h"

#include <sstream>

#include "obs/metrics.h"
#include "verify/checker.h"

namespace sani::verify {

using obs::json_escape;

namespace {

// Deterministic-report support: a copy of `result` with every wall-clock
// field zeroed and every strategy-variant counter reset, so two runs that
// verified the same input identically render byte-identical reports
// regardless of machine speed, cache temperature, scheduling, or whether an
// incremental scan replayed part of the work.  What stays is precisely what
// the verification *semantics* determine: verdict, witness, observable and
// combination counts.  What goes is what the execution *strategy* shapes:
// durations, cache/memo traffic, diagram and arena accounting, per-worker
// load split, and the incremental replay stats (an incremental run's
// deterministic report is byte-identical to a cold one by construction —
// that is the correctness gate; the replay counters remain visible through
// --metrics-out and the non-deterministic JSON report).  Phase names are
// preserved (at 0.0) so the report's *shape* still matches the cold run.
VerifyResult strip_timing(const VerifyResult& result) {
  VerifyResult out = result;
  out.stats.thaw_seconds = 0.0;
  out.stats.parallel.cancel_latency = 0.0;
  out.stats.parallel.shards_stolen = 0;
  out.stats.parallel.shards_skipped = 0;
  out.stats.parallel.shards_abandoned = 0;
  for (WorkerStats& w : out.stats.parallel.workers) {
    w.thaw_seconds = 0.0;
    w.shards = 0;
    w.combinations = 0;
    w.coefficients = 0;
    w.peak_nodes = 0;
  }
  out.stats.coefficients = 0;
  out.stats.prefix_memo = {};
  out.stats.region_cache = {};
  out.stats.qinfo_peak_bytes = 0;
  out.stats.dd_cache_hits = 0;
  out.stats.dd_cache_misses = 0;
  out.stats.dd_peak_nodes = 0;
  out.stats.dd_gc_runs = 0;
  out.stats.dd_cache_survived = 0;
  out.stats.dd_arena_bytes = 0;
  out.stats.arena_convolutions = 0;
  out.stats.arena_grows = 0;
  out.stats.arena_peak_bytes = 0;
  out.stats.incremental = {};
  PhaseTimers zeroed;
  for (const std::string& name : result.stats.timers.names())
    zeroed.add(name, 0.0);
  out.stats.timers = zeroed;
  return out;
}

/// "auto:MAPI"-style engine label: the resolved choice is what ran, but the
/// report should still say the portfolio made the call.
std::string engine_label(const VerifyOptions& options,
                         const VerifyResult& result) {
  if (result.stats.portfolio.active)
    return std::string("auto:") + engine_name(result.stats.portfolio.chosen);
  return engine_name(options.engine);
}

}  // namespace

std::string decode_alpha(const circuit::Gadget& gadget,
                         const circuit::VarMap& vars, const Mask& alpha) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  alpha.for_each_bit([&](int v) {
    if (!first) os << ", ";
    first = false;
    os << gadget.netlist.node(vars.var_to_wire[v]).name;
  });
  os << '}';
  return os.str();
}

std::string summarize(const std::string& gadget_name,
                      const VerifyOptions& options, const VerifyResult& result,
                      double seconds) {
  if (options.deterministic_report) seconds = 0.0;
  std::ostringstream os;
  os << gadget_name;
  if (result.timed_out)
    os << ": timed out";
  else if (result.secure)
    os << " is " << options.order << "-" << notion_name(options.notion);
  else
    os << " is NOT " << options.order << "-" << notion_name(options.notion);
  os << " (engine " << engine_label(options, result) << ", "
     << result.stats.num_observables << " observables, "
     << result.stats.combinations << " combinations, ";
  // Resolved worker count (after --jobs 0 expands to the hardware
  // concurrency); serial runs leave parallel.jobs at 0.
  if (result.stats.parallel.jobs > 0)
    os << result.stats.parallel.jobs << " jobs, ";
  os << seconds * 1e3 << " ms)";
  return os.str();
}

void export_metrics(const VerifyOptions& options, const VerifyResult& result,
                    double seconds) {
  auto& m = obs::Metrics::instance();
  const VerifyStats& s = result.stats;
  m.counter("verify.combinations").set(s.combinations);
  m.counter("verify.coefficients").set(s.coefficients);
  m.counter("verify.observables").set(s.num_observables);
  m.counter("verify.order").set(static_cast<std::uint64_t>(options.order));
  m.gauge("verify.seconds").set(seconds);
  m.gauge("verify.combinations_per_sec")
      .set(seconds > 0 ? static_cast<double>(s.combinations) / seconds : 0.0);
  m.counter("verify.secure").set(result.secure ? 1 : 0);
  m.counter("verify.timed_out").set(result.timed_out ? 1 : 0);
  m.counter("memo.prefix.hits").set(s.prefix_memo.hits);
  m.counter("memo.prefix.misses").set(s.prefix_memo.misses);
  m.counter("memo.region.hits").set(s.region_cache.hits);
  m.counter("memo.region.misses").set(s.region_cache.misses);
  m.counter("qinfo.entries").set(s.qinfo_entries);
  m.counter("qinfo.peak_bytes").set(s.qinfo_peak_bytes);
  m.counter("frozen.nodes").set(s.frozen_nodes);
  m.counter("frozen.bytes").set(s.frozen_bytes);
  m.counter("dd.cache_hits").set(s.dd_cache_hits);
  m.counter("dd.cache_misses").set(s.dd_cache_misses);
  const std::uint64_t lookups = s.dd_cache_hits + s.dd_cache_misses;
  m.gauge("dd.cache_hit_rate")
      .set(lookups ? static_cast<double>(s.dd_cache_hits) /
                         static_cast<double>(lookups)
                   : 0.0);
  m.counter("dd.peak_nodes").set(s.dd_peak_nodes);
  m.counter("dd.gc_runs").set(s.dd_gc_runs);
  m.counter("dd.cache_survived").set(s.dd_cache_survived);
  m.counter("dd.arena_bytes").set(s.dd_arena_bytes);
  m.gauge("dd.thaw_seconds").set(s.thaw_seconds);
  m.counter("parallel.jobs")
      .set(static_cast<std::uint64_t>(s.parallel.jobs > 0 ? s.parallel.jobs
                                                          : 1));
  m.counter("parallel.shards").set(s.parallel.shards_total);
  m.counter("parallel.shards_stolen").set(s.parallel.shards_stolen);
  m.counter("parallel.shards_skipped").set(s.parallel.shards_skipped);
  m.counter("parallel.shards_abandoned").set(s.parallel.shards_abandoned);
  m.gauge("parallel.cancel_latency").set(s.parallel.cancel_latency);
  m.counter("arena.convolutions").set(s.arena_convolutions);
  m.counter("arena.grows").set(s.arena_grows);
  m.counter("arena.peak_bytes").set(s.arena_peak_bytes);
  if (s.incremental.active) {
    m.counter("incremental.cones_total").set(s.incremental.cones_total);
    m.counter("incremental.cones_reused").set(s.incremental.cones_reused);
    m.counter("incremental.combinations_skipped")
        .set(s.incremental.combinations_skipped);
    m.counter("incremental.combinations_rechecked")
        .set(s.incremental.combinations_rechecked);
  }
  if (s.portfolio.active) {
    const PortfolioStats& p = s.portfolio;
    m.counter(std::string("portfolio.chosen.") + engine_name(p.chosen)).set(1);
    m.counter("portfolio.cache_bits")
        .set(static_cast<std::uint64_t>(p.cache_bits));
    m.counter("portfolio.predictors.observables").set(p.observables);
    m.counter("portfolio.predictors.combinations").set(p.combinations);
    m.counter("portfolio.predictors.base_coefficients")
        .set(p.base_coefficients);
    m.counter("portfolio.predictors.max_cone_width").set(p.max_cone_width);
    m.counter("portfolio.predictors.share_positions").set(p.share_positions);
    m.gauge("portfolio.predictors.mean_spectrum_size")
        .set(p.mean_spectrum_size);
    m.gauge("portfolio.predictors.density").set(p.density);
  }
  for (const auto& name : s.timers.names())
    m.gauge("phase." + name + ".seconds").set(s.timers.get(name));
}

std::string json_report(const std::string& gadget_name,
                        const VerifyOptions& options,
                        const VerifyResult& result_in, double seconds) {
  const VerifyResult result =
      options.deterministic_report ? strip_timing(result_in) : result_in;
  if (options.deterministic_report) seconds = 0.0;
  std::ostringstream os;
  os << "{";
  os << "\"gadget\":\"" << json_escape(gadget_name) << "\",";
  os << "\"notion\":\"" << notion_name(options.notion) << "\",";
  os << "\"order\":" << options.order << ",";
  os << "\"engine\":\"" << engine_name(options.engine) << "\",";
  os << "\"robust\":" << (options.probes.glitch_robust ? "true" : "false")
     << ",";
  os << "\"secure\":" << (result.secure ? "true" : "false") << ",";
  os << "\"timed_out\":" << (result.timed_out ? "true" : "false") << ",";
  os << "\"observables\":" << result.stats.num_observables << ",";
  os << "\"combinations\":" << result.stats.combinations << ",";
  os << "\"coefficients\":" << result.stats.coefficients << ",";
  os << "\"caches\":{";
  os << "\"prefix_memo\":{\"hits\":" << result.stats.prefix_memo.hits
     << ",\"misses\":" << result.stats.prefix_memo.misses << "},";
  os << "\"region_cache\":{\"hits\":" << result.stats.region_cache.hits
     << ",\"misses\":" << result.stats.region_cache.misses << "}},";
  os << "\"qinfo\":{\"entries\":" << result.stats.qinfo_entries
     << ",\"peak_bytes\":" << result.stats.qinfo_peak_bytes << "},";
  os << "\"frozen\":{\"nodes\":" << result.stats.frozen_nodes
     << ",\"bytes\":" << result.stats.frozen_bytes << "},";
  os << "\"arena\":{\"convolutions\":" << result.stats.arena_convolutions
     << ",\"grows\":" << result.stats.arena_grows
     << ",\"peak_bytes\":" << result.stats.arena_peak_bytes << "},";
  if (result.stats.incremental.active) {
    // Absent under --deterministic-report (strip_timing resets it): the
    // replay split is a property of the run's history, not of the verdict.
    const IncrementalStats& inc = result.stats.incremental;
    os << "\"incremental\":{\"cones_total\":" << inc.cones_total
       << ",\"cones_reused\":" << inc.cones_reused
       << ",\"combinations_skipped\":" << inc.combinations_skipped
       << ",\"combinations_rechecked\":" << inc.combinations_rechecked
       << "},";
  }
  if (result.stats.portfolio.active) {
    const PortfolioStats& p = result.stats.portfolio;
    os << "\"portfolio\":{\"chosen\":\"" << engine_name(p.chosen)
       << "\",\"cache_bits\":" << p.cache_bits
       << ",\"predictors\":{\"observables\":" << p.observables
       << ",\"combinations\":" << p.combinations
       << ",\"base_coefficients\":" << p.base_coefficients
       << ",\"max_cone_width\":" << p.max_cone_width
       << ",\"share_positions\":" << p.share_positions
       << ",\"mean_spectrum_size\":" << p.mean_spectrum_size
       << ",\"density\":" << p.density << "}},";
  }
  {
    const std::uint64_t lookups =
        result.stats.dd_cache_hits + result.stats.dd_cache_misses;
    os << "\"dd\":{\"cache_hits\":" << result.stats.dd_cache_hits
       << ",\"cache_misses\":" << result.stats.dd_cache_misses
       << ",\"cache_hit_rate\":"
       << (lookups ? static_cast<double>(result.stats.dd_cache_hits) /
                         static_cast<double>(lookups)
                   : 0.0)
       << ",\"peak_nodes\":" << result.stats.dd_peak_nodes
       << ",\"cache_bits\":" << result.stats.dd_cache_bits
       << ",\"gc_runs\":" << result.stats.dd_gc_runs
       << ",\"cache_survived\":" << result.stats.dd_cache_survived
       << ",\"arena_bytes\":" << result.stats.dd_arena_bytes
       << ",\"thaw_seconds\":" << result.stats.thaw_seconds << "},";
  }
  os << "\"seconds\":" << seconds << ",";
  os << "\"warnings\":[";
  for (std::size_t i = 0; i < result.warnings.size(); ++i) {
    if (i) os << ',';
    os << "\"" << json_escape(result.warnings[i]) << "\"";
  }
  os << "],";
  os << "\"jobs\":"
     << (result.stats.parallel.jobs > 0 ? result.stats.parallel.jobs : 1)
     << ",";
  if (result.stats.parallel.jobs > 0) {
    const ParallelStats& p = result.stats.parallel;
    os << "\"parallel\":{";
    os << "\"shared_basis\":" << (p.shared_basis ? "true" : "false") << ",";
    os << "\"replays\":" << p.replays << ",";
    os << "\"shards\":" << p.shards_total << ",";
    os << "\"shards_stolen\":" << p.shards_stolen << ",";
    os << "\"shards_skipped\":" << p.shards_skipped << ",";
    os << "\"shards_abandoned\":" << p.shards_abandoned << ",";
    os << "\"cancel_latency\":" << p.cancel_latency << ",";
    os << "\"workers\":[";
    for (std::size_t w = 0; w < p.workers.size(); ++w) {
      if (w) os << ',';
      os << "{\"shards\":" << p.workers[w].shards
         << ",\"combinations\":" << p.workers[w].combinations
         << ",\"coefficients\":" << p.workers[w].coefficients
         << ",\"replays\":" << p.workers[w].replays
         << ",\"thaw_seconds\":" << p.workers[w].thaw_seconds
         << ",\"peak_nodes\":" << p.workers[w].peak_nodes << "}";
    }
    os << "]},";
  }
  os << "\"phases\":{";
  const auto& names = result.stats.timers.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ',';
    os << "\"" << json_escape(names[i])
       << "\":" << result.stats.timers.get(names[i]);
  }
  os << "},";
  if (options.deterministic_report) {
    // The registry is process-global and volatile (store counters, timed
    // histograms, gauges from earlier runs in the same process): embedding
    // it would break warm-vs-cold byte diffs, and a daemon's registry never
    // matches a one-shot CLI's.  Emit an explicit null instead.
    os << "\"metrics\":null,";
  } else {
    export_metrics(options, result, seconds);
    os << "\"metrics\":" << obs::Metrics::instance().to_json() << ",";
  }
  os << "\"counterexample\":";
  if (result.counterexample) {
    const CounterExample& ce = *result.counterexample;
    os << "{\"observables\":[";
    for (std::size_t i = 0; i < ce.observables.size(); ++i) {
      if (i) os << ',';
      os << "\"" << json_escape(ce.observables[i]) << "\"";
    }
    os << "],\"alpha\":\"" << ce.alpha.to_string() << "\",\"reason\":\""
       << json_escape(ce.reason) << "\"}";
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

std::string detailed_report(const circuit::Gadget& gadget,
                            const circuit::VarMap& vars,
                            const VerifyOptions& options,
                            const VerifyResult& result_in) {
  const VerifyResult result =
      options.deterministic_report ? strip_timing(result_in) : result_in;
  std::ostringstream os;
  os << "gadget: " << gadget.netlist.name() << "\n";
  os << "notion: " << options.order << "-" << notion_name(options.notion)
     << "  engine: " << engine_label(options, result) << "\n";
  os << "observables: " << result.stats.num_observables
     << "  combinations: " << result.stats.combinations
     << "  coefficients: " << result.stats.coefficients << "\n";
  os << "caches: prefix memo " << result.stats.prefix_memo.hits << " hits / "
     << result.stats.prefix_memo.misses << " misses, region cache "
     << result.stats.region_cache.hits << " hits / "
     << result.stats.region_cache.misses << " misses\n";
  if (result.stats.qinfo_entries > 0)
    os << "union-check arena: " << result.stats.qinfo_entries
       << " entries, peak " << result.stats.qinfo_peak_bytes << " bytes\n";
  if (result.stats.frozen_nodes > 0)
    os << "frozen forest: " << result.stats.frozen_nodes << " nodes, "
       << result.stats.frozen_bytes << " bytes\n";
  if (result.stats.arena_convolutions > 0)
    os << "flat arena: " << result.stats.arena_convolutions
       << " convolutions, " << result.stats.arena_grows
       << " buffer grows, peak " << result.stats.arena_peak_bytes
       << " bytes\n";
  if (result.stats.incremental.active)
    os << "incremental: " << result.stats.incremental.cones_reused << "/"
       << result.stats.incremental.cones_total << " cones reused, "
       << result.stats.incremental.combinations_skipped
       << " combinations replayed, "
       << result.stats.incremental.combinations_rechecked
       << " re-checked\n";
  if (result.stats.portfolio.active) {
    const PortfolioStats& p = result.stats.portfolio;
    os << "portfolio: chose " << engine_name(p.chosen) << " (cache 2^"
       << p.cache_bits << "), mean spectrum " << p.mean_spectrum_size
       << ", share positions " << p.share_positions << ", combinations "
       << p.combinations << "\n";
  }
  if (result.stats.dd_cache_hits + result.stats.dd_cache_misses > 0) {
    os << "dd manager: " << result.stats.dd_cache_hits << " cache hits / "
       << result.stats.dd_cache_misses << " misses (2^"
       << result.stats.dd_cache_bits << " entries), peak "
       << result.stats.dd_peak_nodes << " nodes, arena "
       << result.stats.dd_arena_bytes << " bytes, thaw "
       << result.stats.thaw_seconds << " s\n";
    if (result.stats.dd_gc_runs > 0)
      os << "  gc: " << result.stats.dd_gc_runs << " collections, "
         << result.stats.dd_cache_survived
         << " computed-table entries survived them\n";
  }
  for (const auto& name : result.stats.timers.names())
    os << "  phase " << name << ": " << result.stats.timers.get(name) << " s\n";
  if (result.stats.parallel.jobs > 0) {
    const ParallelStats& p = result.stats.parallel;
    os << "parallel: " << p.jobs << " jobs (shared basis, " << p.replays
       << " replays), " << p.shards_total << " shards ("
       << p.shards_stolen << " stolen, " << p.shards_skipped << " skipped, "
       << p.shards_abandoned << " abandoned), cancel latency "
       << p.cancel_latency << " s\n";
    for (std::size_t w = 0; w < p.workers.size(); ++w)
      os << "  worker " << w << ": " << p.workers[w].shards << " shards, "
         << p.workers[w].combinations << " combinations, "
         << p.workers[w].coefficients << " coefficients, thaw "
         << p.workers[w].thaw_seconds << " s, peak "
         << p.workers[w].peak_nodes << " nodes\n";
  }
  if (result.timed_out) {
    os << "verdict: TIMED OUT\n";
    return os.str();
  }
  os << "verdict: " << (result.secure ? "SECURE" : "INSECURE") << "\n";
  if (result.counterexample) {
    const CounterExample& ce = *result.counterexample;
    os << "counterexample:\n  observables:";
    for (const auto& n : ce.observables) os << ' ' << n;
    os << "\n  witness coordinate: " << decode_alpha(gadget, vars, ce.alpha)
       << "\n  reason: " << ce.reason << "\n";
  }
  return os.str();
}

}  // namespace sani::verify
