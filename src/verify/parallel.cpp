#include "verify/parallel.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sched/cancel.h"
#include "sched/pool.h"
#include "sched/shard.h"
#include "util/combinations.h"
#include "util/timer.h"
#include "verify/backends/registry.h"
#include "verify/driver.h"

namespace sani::verify {

namespace {

/// The serial engine's total order on combinations.  Depth-first search
/// visits prefixes before their extensions and smaller index sequences
/// first — exactly std::vector's lexicographic operator<.  Largest-first
/// visits sizes descending, ranks ascending within a size.  The parallel
/// merge reports the minimum failing combination under this order, which is
/// precisely the combination the serial walk would have failed on first.
bool combo_before(const std::vector<int>& a, const std::vector<int>& b,
                  bool largest_first) {
  if (largest_first && a.size() != b.size()) return a.size() > b.size();
  return a < b;
}

struct WorkerCtx {
  std::optional<PreparedInput> input;  // ADD engines: private replica
  std::unique_ptr<Driver> driver;
  std::uint64_t shards = 0;
  std::uint64_t replays = 0;  // unfoldings replayed on this worker's thread
};

/// The pool run over a shared basis.  `prepare` is null for the scan
/// engines (workers need nothing beyond the basis) and set for the ADD
/// engines (each worker replays a private manager replica); `first` is the
/// calling-thread replica that seeds worker 0 in replay mode.
VerifyResult run_pool(std::shared_ptr<const Basis> basis,
                      const PrepareFn& prepare,
                      std::optional<PreparedInput> first,
                      const VerifyOptions& options) {
  const bool replay_mode = static_cast<bool>(prepare);
  int jobs = options.jobs;
  if (jobs == 0) jobs = sched::Pool::hardware_threads();
  if (jobs < 1) jobs = 1;

  sched::CancelToken cancel;
  if (options.time_limit > 0) cancel.set_deadline_after(options.time_limit);

  const int N = static_cast<int>(basis->size());

  VerifyResult result;
  result.stats.num_observables = static_cast<std::size_t>(N);

  const bool largest = options.search_order == SearchOrder::kLargestFirst;
  sched::ShardPlanOptions plan_options;
  if (options.shard_size > 0) plan_options.fixed_size = options.shard_size;
  const std::vector<sched::Shard> shards =
      sched::plan_shards(N, options.order, jobs, largest, plan_options);

  std::vector<WorkerCtx> ctx(static_cast<std::size_t>(jobs));
  if (replay_mode) {
    // Worker 0 starts checking on the calling thread's replica while the
    // other workers are still replaying their unfoldings.
    ctx[0].input = std::move(first);
    ctx[0].driver = std::make_unique<Driver>(
        basis, options, &cancel, ctx[0].input->unfolded.manager.get(),
        &ctx[0].input->observables);
  } else {
    ctx[0].driver = std::make_unique<Driver>(basis, options, &cancel);
  }

  // The deterministic merge state: the best (order-minimal) failure so far.
  std::mutex best_mu;
  std::optional<Driver::ShardFailure> best;
  std::atomic<std::uint64_t> skipped{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<bool> timed_out{false};

  // True while `combo` is still ordered before the best known failure —
  // i.e. checking it can still change the reported witness.
  auto still_relevant = [&](const std::vector<int>& combo) {
    std::lock_guard<std::mutex> lk(best_mu);
    return !best || combo_before(combo, best->combo, largest);
  };

  sched::Pool pool(jobs);
  const sched::PoolStats pool_stats = pool.run(
      shards.size(), [&](int worker, std::size_t task) {
        WorkerCtx& slot = ctx[static_cast<std::size_t>(worker)];
        if (!slot.driver) {
          if (replay_mode) {
            slot.input = prepare();
            ++slot.replays;
            slot.driver = std::make_unique<Driver>(
                basis, options, &cancel, slot.input->unfolded.manager.get(),
                &slot.input->observables);
          } else {
            slot.driver = std::make_unique<Driver>(basis, options, &cancel);
          }
        }
        const sched::Shard& shard = shards[task];

        // Claiming a whole shard is pointless once a failure ordered before
        // its first combination exists; skip it outright.
        if (cancel.cancelled() &&
            !still_relevant(unrank_combination(N, shard.k, shard.begin))) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          cancel.acknowledge();
          return;
        }

        Driver::ShardOutcome out;
        slot.driver->run_shard(shard, still_relevant, out);
        ++slot.shards;
        if (out.timed_out) timed_out.store(true, std::memory_order_relaxed);
        if (out.abandoned) abandoned.fetch_add(1, std::memory_order_relaxed);
        if (out.failure) {
          std::lock_guard<std::mutex> lk(best_mu);
          if (!best || combo_before(out.failure->combo, best->combo, largest))
            best = std::move(out.failure);
          cancel.cancel();
        }
      });

  // Merge: counters, per-worker stats, union-check data.  The one-time
  // basis build is credited here, once — not per worker.
  result.stats.coefficients += basis->base_coefficients;
  result.stats.timers.add("base", basis->build_seconds);

  QInfoStore merged_qinfo(N);
  result.stats.parallel.jobs = jobs;
  result.stats.parallel.shared_basis = !replay_mode;
  result.stats.parallel.shards_total = shards.size();
  result.stats.parallel.shards_stolen = pool_stats.tasks_stolen;
  result.stats.parallel.shards_skipped =
      skipped.load(std::memory_order_relaxed);
  result.stats.parallel.shards_abandoned =
      abandoned.load(std::memory_order_relaxed);
  result.stats.parallel.workers.resize(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    const WorkerCtx& slot = ctx[static_cast<std::size_t>(w)];
    WorkerStats& out =
        result.stats.parallel.workers[static_cast<std::size_t>(w)];
    out.replays = slot.replays;
    result.stats.parallel.replays += slot.replays;
    if (!slot.driver) continue;  // this worker never claimed a shard
    const VerifyStats& ws = slot.driver->stats();
    out.shards = slot.shards;
    out.combinations = ws.combinations;
    out.coefficients = ws.coefficients;
    out.peak_nodes = slot.driver->peak_nodes();
    result.stats.combinations += ws.combinations;
    result.stats.coefficients += ws.coefficients;
    result.stats.prefix_memo.hits += ws.prefix_memo.hits;
    result.stats.prefix_memo.misses += ws.prefix_memo.misses;
    result.stats.region_cache.hits += ws.region_cache.hits;
    result.stats.region_cache.misses += ws.region_cache.misses;
    for (const auto& name : ws.timers.names())
      result.stats.timers.add(name, ws.timers.get(name));
    if (options.union_check && options.notion != Notion::kProbing)
      merged_qinfo.merge_from(slot.driver->qinfo());
  }
  result.stats.qinfo_entries = merged_qinfo.size();
  result.stats.qinfo_peak_bytes = merged_qinfo.peak_bytes();

  if (best) {
    result.secure = false;
    result.counterexample = std::move(best->ce);
  } else if (timed_out.load(std::memory_order_relaxed) || cancel.expired()) {
    result.timed_out = true;
  } else if (options.union_check && options.notion != Notion::kProbing) {
    // Every combination passed the per-row check; the set-level pass runs
    // once, on the merged dependency data (identical to the serial pass —
    // the per-worker stores partition the combination space).
    ScopedPhase phase(result.stats.timers, "union");
    ctx[0].driver->union_pass_over(merged_qinfo, result);
  }
  result.stats.parallel.cancel_latency = cancel.max_ack_latency();
  return result;
}

}  // namespace

VerifyResult verify_parallel(const PrepareFn& prepare,
                             const VerifyOptions& options) {
  const BackendInfo& info = backend_info(options.engine);

  // One build on the calling thread: sizes the probe space and yields the
  // shared Basis every worker reads.
  PreparedInput first = prepare();
  std::shared_ptr<const Basis> basis =
      build_basis(first.unfolded, first.observables, options.engine);

  if (!info.needs_manager) {
    // Scan engines: the Basis is the whole prepared input; the replica
    // (and its manager) can be dropped before the pool starts.
    return run_pool(std::move(basis), nullptr, std::nullopt, options);
  }
  return run_pool(std::move(basis), prepare, std::move(first), options);
}

VerifyResult verify_parallel_basis(std::shared_ptr<const Basis> basis,
                                   const VerifyOptions& options) {
  const BackendInfo& info = backend_info(options.engine);
  if (info.needs_manager)
    throw std::logic_error(
        std::string("verify_parallel_basis: engine ") + info.name +
        " needs per-worker manager replicas; use verify_parallel()");
  return run_pool(std::move(basis), nullptr, std::nullopt, options);
}

}  // namespace sani::verify
