#include "verify/parallel.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "sched/cancel.h"
#include "sched/pool.h"
#include "sched/shard.h"
#include "util/combinations.h"
#include "obs/clock.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "verify/driver.h"
#include "verify/incremental.h"
#include "verify/partial.h"
#include "verify/portfolio.h"

namespace sani::verify {

namespace {

struct WorkerCtx {
  std::unique_ptr<Driver> driver;
  std::uint64_t shards = 0;
};

/// The pool run over the one shared basis.  Worker 0's Driver is built on
/// the calling thread; the others are built lazily on their own threads
/// (the ADD engines thaw the basis' frozen forest into a private manager in
/// the Driver constructor — the only per-worker setup left).
VerifyResult run_pool(std::shared_ptr<const Basis> basis,
                      const VerifyOptions& options,
                      sched::CancelToken* external_cancel = nullptr,
                      const IncrementalContext* ictx = nullptr) {
  const int jobs = sched::default_jobs(options.jobs);

  sched::CancelToken own_cancel;
  sched::CancelToken& cancel = external_cancel ? *external_cancel : own_cancel;
  if (options.time_limit > 0) cancel.set_deadline_after(options.time_limit);

  const int N = static_cast<int>(basis->size());

  VerifyResult result;
  result.stats.num_observables = static_cast<std::size_t>(N);

  const bool largest = options.search_order == SearchOrder::kLargestFirst;
  sched::ShardPlanOptions plan_options;
  if (options.shard_size > 0) plan_options.fixed_size = options.shard_size;
  const std::vector<sched::Shard> shards =
      sched::plan_shards(N, options.order, jobs, largest, plan_options);

  // Per-worker outcome recorders for the fresh summary (merged below);
  // every worker shares the one immutable plan without synchronization.
  std::vector<std::unique_ptr<SummaryCollector>> collectors;
  if (ictx && ictx->collector) {
    collectors.resize(static_cast<std::size_t>(jobs));
    for (auto& c : collectors)
      c = std::make_unique<SummaryCollector>(N, options.order);
  }
  auto arm_incremental = [&](int worker, Driver& driver) {
    if (!ictx) return;
    driver.set_incremental(
        ictx->plan, collectors.empty()
                        ? nullptr
                        : collectors[static_cast<std::size_t>(worker)].get());
  };

  std::vector<WorkerCtx> ctx(static_cast<std::size_t>(jobs));
  ctx[0].driver = std::make_unique<Driver>(basis, options, &cancel);
  arm_incremental(0, *ctx[0].driver);

  // The deterministic merge state: workers emit one PartialReport per
  // shard and the assembler folds each in as it completes (order-minimal
  // failure, merged union-check store) — the fold is associative, so the
  // completion order the pool happens to produce cannot show in the result.
  std::mutex best_mu;
  ReportAssembler assembler(basis, options);
  std::atomic<std::uint64_t> skipped{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<bool> timed_out{false};

  // True while `combo` is still ordered before the best known failure —
  // i.e. checking it can still change the reported witness.
  auto still_relevant = [&](const std::vector<int>& combo) {
    std::lock_guard<std::mutex> lk(best_mu);
    return !assembler.has_failure() ||
           combo_before(combo, assembler.failure_combo(), largest);
  };

  if (options.progress)
    options.progress->start(count_combinations_up_to(N, options.order));

  sched::Pool pool(jobs);
  const sched::PoolStats pool_stats = pool.run(
      shards.size(), [&](int worker, std::size_t task) {
        WorkerCtx& slot = ctx[static_cast<std::size_t>(worker)];
        if (!slot.driver) {
          slot.driver = std::make_unique<Driver>(basis, options, &cancel);
          arm_incremental(worker, *slot.driver);
        }
        const sched::Shard& shard = shards[task];

        // Claiming a whole shard is pointless once a failure ordered before
        // its first combination exists; skip it outright.
        if (cancel.cancelled() &&
            !still_relevant(unrank_combination(N, shard.k, shard.begin))) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          cancel.acknowledge();
          return;
        }

        Driver::ShardOutcome out;
        PartialReport part;
        slot.driver->run_shard_partial(shard, still_relevant, out, part);
        ++slot.shards;
        if (out.timed_out) timed_out.store(true, std::memory_order_relaxed);
        if (out.abandoned) abandoned.fetch_add(1, std::memory_order_relaxed);
        const bool failed = out.failure.has_value();
        {
          std::lock_guard<std::mutex> lk(best_mu);
          assembler.add(std::move(part));
        }
        if (failed) cancel.cancel();
      });

  if (options.progress) options.progress->stop();

  // Merge: counters, per-worker stats, union-check data.  The one-time
  // basis build is credited here, once — not per worker.
  result.stats.coefficients += basis->base_coefficients;
  result.stats.timers.add("base", basis->build_seconds);
  result.stats.frozen_nodes = basis->frozen.node_count();
  result.stats.frozen_bytes = basis->frozen.empty() ? 0 : basis->frozen.bytes();

  result.stats.parallel.jobs = jobs;
  // Every engine shares the one Basis now; the frozen forest replaced the
  // per-worker unfolding replays, so these are constants, kept as report
  // fields (and test assertions) rather than run-dependent state.
  result.stats.parallel.shared_basis = true;
  result.stats.parallel.replays = 0;
  result.stats.parallel.shards_total = shards.size();
  result.stats.parallel.shards_stolen = pool_stats.tasks_stolen;
  result.stats.parallel.shards_skipped =
      skipped.load(std::memory_order_relaxed);
  result.stats.parallel.shards_abandoned =
      abandoned.load(std::memory_order_relaxed);
  result.stats.parallel.workers.resize(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    const WorkerCtx& slot = ctx[static_cast<std::size_t>(w)];
    WorkerStats& out =
        result.stats.parallel.workers[static_cast<std::size_t>(w)];
    if (!slot.driver) continue;  // this worker never claimed a shard
    const VerifyStats& ws = slot.driver->stats();
    out.shards = slot.shards;
    out.combinations = ws.combinations;
    out.coefficients = ws.coefficients;
    out.thaw_seconds = slot.driver->thaw_seconds();
    out.peak_nodes = slot.driver->peak_nodes();
    const dd::ManagerStats dd = slot.driver->manager_stats();
    result.stats.thaw_seconds += out.thaw_seconds;
    result.stats.dd_cache_hits += dd.cache_hits;
    result.stats.dd_cache_misses += dd.cache_misses;
    if (out.peak_nodes > result.stats.dd_peak_nodes)
      result.stats.dd_peak_nodes = out.peak_nodes;
    result.stats.dd_gc_runs += dd.gc_runs;
    result.stats.dd_cache_survived += dd.cache_survived;
    if (slot.driver->manager_cache_bits() > result.stats.dd_cache_bits)
      result.stats.dd_cache_bits = slot.driver->manager_cache_bits();
    if (slot.driver->manager_arena_bytes() > result.stats.dd_arena_bytes)
      result.stats.dd_arena_bytes = slot.driver->manager_arena_bytes();
    const spectral::ArenaStats& arena = slot.driver->arena_stats();
    result.stats.arena_convolutions += arena.convolutions;
    result.stats.arena_grows += arena.grows;
    if (arena.peak_bytes > result.stats.arena_peak_bytes)
      result.stats.arena_peak_bytes = arena.peak_bytes;
    result.stats.combinations += ws.combinations;
    result.stats.coefficients += ws.coefficients;
    result.stats.incremental.combinations_skipped +=
        ws.incremental.combinations_skipped;
    result.stats.incremental.combinations_rechecked +=
        ws.incremental.combinations_rechecked;
    result.stats.prefix_memo.hits += ws.prefix_memo.hits;
    result.stats.prefix_memo.misses += ws.prefix_memo.misses;
    result.stats.region_cache.hits += ws.region_cache.hits;
    result.stats.region_cache.misses += ws.region_cache.misses;
    for (const auto& name : ws.timers.names())
      result.stats.timers.add(name, ws.timers.get(name));
  }
  result.stats.qinfo_entries = assembler.qinfo().size();
  result.stats.qinfo_peak_bytes = assembler.qinfo().peak_bytes();
  if (ictx && ictx->collector)
    for (const auto& c : collectors) ictx->collector->merge_from(*c);
  if (ictx && ictx->deps_out) ictx->deps_out->merge_from(assembler.qinfo());

  if (assembler.has_failure()) {
    result.secure = false;
    result.counterexample = assembler.failure_counterexample();
  } else if (timed_out.load(std::memory_order_relaxed) || cancel.expired()) {
    result.timed_out = true;
  } else if (options.union_check && options.notion != Notion::kProbing) {
    // Every combination passed the per-row check; the set-level pass runs
    // once, on the assembler's merged dependency data (identical to the
    // serial pass — the shards partition the combination space).
    ScopedPhase phase(result.stats.timers, "union");
    obs::Span span("union");
    ctx[0].driver->union_pass_over(assembler.qinfo(), result);
  }
  result.stats.parallel.cancel_latency = cancel.max_ack_latency();
  return result;
}

}  // namespace

VerifyResult verify_parallel(const PrepareFn& prepare,
                             const VerifyOptions& options) {
  // One build on the calling thread: sizes the probe space and yields the
  // shared Basis (frozen forest included) every worker reads.  The
  // unfolding and its manager are dropped before the pool starts.
  PreparedInput first = prepare();
  std::shared_ptr<const Basis> basis =
      build_basis(first.unfolded, first.observables, options.engine);
  // kAuto must resolve before any Driver exists: the registry carries no
  // kAuto entry, and the workers copy their engine from the options.
  PortfolioStats pstats;
  const VerifyOptions resolved = resolve_portfolio(*basis, options, &pstats);
  VerifyResult result = run_pool(std::move(basis), resolved);
  if (pstats.active) result.stats.portfolio = pstats;
  return result;
}

VerifyResult verify_parallel_basis(std::shared_ptr<const Basis> basis,
                                   const VerifyOptions& options,
                                   sched::CancelToken* cancel) {
  return run_pool(std::move(basis), options, cancel);
}

VerifyResult verify_parallel_basis(std::shared_ptr<const Basis> basis,
                                   const VerifyOptions& options,
                                   sched::CancelToken* cancel,
                                   const IncrementalContext* ctx) {
  return run_pool(std::move(basis), options, cancel, ctx);
}

}  // namespace sani::verify
