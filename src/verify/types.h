#pragma once
// Security notions, verification options and results.
//
// Notions (Sec. II-A of the paper; Barthe et al. [3][4]):
//
//  * d-probing security — any d probed wires are jointly independent of the
//    secrets.
//  * d-NI — any s <= d observations (outputs + internal probes) can be
//    simulated with at most s shares of every input.
//  * d-SNI — strong NI: at most i shares, where i counts only the *internal*
//    probes among the observations.
//  * d-PINI — probe-isolating NI (ref [25]; listed as future work in the
//    paper, implemented here): observations can be simulated from the share
//    *indices* of the probed outputs plus at most i extra indices.
//
// Each notion is decided from the Walsh spectra of XOR-combinations of
// observables; see checker.h for the exact spectral conditions.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/unfold.h"
#include "util/mask.h"
#include "obs/clock.h"

namespace sani::obs {
class Progress;
}

namespace sani::verify {

enum class Notion : std::uint8_t { kProbing, kNI, kSNI, kPINI };

const char* notion_name(Notion n);

enum class EngineKind : std::uint8_t {
  kLIL,     // list-of-lists convolution + list-scan verification [11]
  kMAP,     // flat convolution + map-scan verification
  kMAPI,    // flat convolution + ADD verification (the paper's method)
  kFUJITA,  // per-combination Fujita transform + ADD verification
  kAuto,    // portfolio front-end: a cost model over cheap structural
            // predictors resolves one of the engines above per gadget
            // (verify/portfolio.h) before the Driver is built; never
            // reaches the backend registry unresolved
};

const char* engine_name(EngineKind e);

/// Combination enumeration strategy.
enum class SearchOrder : std::uint8_t {
  /// Depth-first over the observable set: maximal sharing of convolution
  /// prefixes (cheapest on secure instances, where everything is enumerated
  /// anyway).
  kDepthFirst,
  /// The paper's Sec. III-C strategy: all combinations of the maximum size
  /// first, then smaller ones — vulnerabilities are unlikely to be masked
  /// in larger combinations, so failures surface earlier.
  kLargestFirst,
};

/// Probe-universe construction options.
struct ProbeModelOptions {
  /// Probe primary-input wires too (shares/randoms); default follows the
  /// paper: probes are the *intermediate* nodes produced by unfolding.
  bool include_inputs = false;
  /// Drop probes whose function duplicates an earlier observable.
  bool dedupe = true;
  /// Glitch-extended (robust) probes: a probe observes every stable source
  /// in its combinational cone.
  bool glitch_robust = false;
};

struct VerifyOptions {
  Notion notion = Notion::kSNI;
  int order = 1;  // d: maximum number of observations
  EngineKind engine = EngineKind::kMAPI;
  ProbeModelOptions probes;

  /// Also run the set-level union check (rigorous NI/SNI/PINI semantics,
  /// subsumes the per-row T-predicate check; see DESIGN.md Sec. 2).
  bool union_check = true;

  /// Share-counting convention for NI/SNI.  false (default): at most t
  /// shares of *each* input (Barthe et al. [4], the convention of
  /// SILVER/maskVerif).  true: at most t input shares *in total*, the
  /// stricter T-matrix the paper uses for its Fig. 2 composition witness
  /// ("one needs only two probed values to get three shares").
  bool joint_share_count = false;

  /// Wall-clock budget in seconds; 0 = unlimited.  On expiry the engine
  /// stops mid-enumeration (the deadline is polled at every combination)
  /// and sets VerifyResult::timed_out.
  double time_limit = 0.0;

  /// Worker count for the sharded parallel runtime (src/sched).  1 = the
  /// serial engine (default); 0 = one worker per hardware thread (the
  /// resolved count is recorded in ParallelStats::jobs); N > 1 = exactly N
  /// workers.  Every engine shares one prepared Basis; ADD-engine workers
  /// thaw its frozen forest into a private dd::Manager (the manager's
  /// GC/reordering safe-point design is single-threaded) — no unfolding
  /// replays.  Verdicts and witnesses are independent of the worker count —
  /// see DESIGN.md "Threading model".
  int jobs = 1;

  /// Combinations per shard for the parallel runtime; 0 = auto sizing from
  /// the worker count (sched::plan_shards).  Small values tighten the
  /// cancellation latency and exercise stealing; large values amortize
  /// shard setup.
  std::uint64_t shard_size = 0;

  /// Computed-table size of the diagram manager (2^bits entries).
  int cache_bits = 18;

  /// Diagram variable order for the unfolding.  Verdicts are
  /// order-invariant (tested); diagram sizes and times are not
  /// (bench_ordering).
  circuit::VarOrder var_order = circuit::VarOrder::kDeclared;

  /// Run Rudell sifting on the shared manager after unfolding, before
  /// verification (dynamic reordering; see dd::Manager::reorder_sift).
  bool sift_after_unfold = false;

  /// Combination enumeration order (verdict-neutral; affects how fast a
  /// failing witness is reached).
  SearchOrder search_order = SearchOrder::kDepthFirst;

  /// Optional live progress meter (not owned).  The engines call
  /// start(total)/stop() around the enumeration and tick() per combination
  /// from every worker; null (default) skips all of it.
  obs::Progress* progress = nullptr;

  /// Capacity (entries) of the per-worker convolution-prefix memo: row sets
  /// of recently built combination prefixes are kept so prefix reuse
  /// survives shard boundaries and largest-first restarts.  0 disables the
  /// memo, negative values make it unbounded.  Verdicts, witnesses and
  /// coefficient counts are memo-invariant (tested).
  std::int64_t memo_capacity = 64;

  /// Diff-aware incremental scan (store/cached_verify.h): look up the
  /// nearest prior ConeSummary for the gadget family, replay the verdicts
  /// of combinations whose cone digests are unchanged, and re-check only
  /// the dirty ones.  Verdicts, witnesses and deterministic reports are
  /// byte-identical to a cold run (tested); only the work differs.  Ignored
  /// when no artifact store is configured.
  bool incremental = false;

  /// Render reports deterministically: every wall-clock/timing field
  /// (seconds, phase breakdowns, thaw and cancel latencies) is zeroed and
  /// the JSON report's embedded metrics object — which carries volatile,
  /// process-lifetime counters — is omitted.  Two runs that verify the same
  /// input identically then produce byte-identical reports, which is what
  /// lets CI diff a store warm-start against a cold run (`sani
  /// --deterministic-report`; the sanid daemon protocol sets this per
  /// request).
  bool deterministic_report = false;
};

/// A witness of a failed check.
struct CounterExample {
  std::vector<std::string> observables;  // names of the failing combination
  Mask alpha;                            // spectral coordinate of the witness
  std::string reason;                    // human-readable explanation
};

/// Hit/miss counters of one cache (prefix memo, row-check region cache).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Per-worker counters of a parallel run (VerifyOptions::jobs != 1).
struct WorkerStats {
  std::uint64_t shards = 0;        // shards this worker executed
  std::uint64_t combinations = 0;  // combinations it checked
  std::uint64_t coefficients = 0;  // spectrum entries it scanned/produced
  std::uint64_t replays = 0;       // always 0 — unfolding replays were
                                   // removed with the frozen-basis runtime;
                                   // kept so reports/tests can assert it
  double thaw_seconds = 0.0;       // frozen-forest import into its manager
  std::size_t peak_nodes = 0;      // its private manager's peak node count
};

/// Runtime counters of a parallel run; `jobs` stays 0 on serial runs.
struct ParallelStats {
  int jobs = 0;                        // resolved worker count (after
                                       // --jobs 0 expands to the hardware
                                       // concurrency)
  bool shared_basis = false;           // true on every parallel run: all
                                       // workers share one prepared Basis
  std::uint64_t shards_total = 0;      // shards the plan produced
  std::uint64_t shards_stolen = 0;     // executed by a non-owner worker
  std::uint64_t shards_skipped = 0;    // cancelled before starting
  std::uint64_t shards_abandoned = 0;  // cancelled mid-shard
  std::uint64_t replays = 0;           // always 0 (see WorkerStats::replays)
  double cancel_latency = 0.0;  // max cancel-to-acknowledge gap (seconds)
  std::vector<WorkerStats> workers;
};

/// Structural predictors the portfolio front-end feeds its cost model —
/// every input is a pure function of the prepared Basis and the options
/// (no wall clock, no randomness), so the choice is deterministic and
/// byte-stable across runs.  Recorded in the report whether or not the
/// portfolio was active, zero-initialized otherwise.
struct PortfolioStats {
  bool active = false;          // options.engine was kAuto
  EngineKind chosen = EngineKind::kMAPI;  // resolved engine
  int cache_bits = 0;           // adaptive computed-table sizing it picked
  std::uint64_t observables = 0;
  std::uint64_t combinations = 0;     // sum_{k<=order} C(observables, k)
  std::uint64_t base_coefficients = 0;
  std::uint64_t max_cone_width = 0;   // max XOR-subsets of one observable
  std::uint64_t share_positions = 0;  // share coordinates of the gadget
  double mean_spectrum_size = 0.0;    // coefficients per base subset
  double density = 0.0;               // mean size / 2^num_vars (capped)
};

/// Counters of the diff-aware incremental scan (active only when
/// VerifyOptions::incremental ran against an artifact store).  The scan's
/// verdict/witness/report bytes are incremental-invariant; these counters
/// are how much work the prior summary saved.
struct IncrementalStats {
  bool active = false;            // an incremental run was requested
  std::uint64_t cones_total = 0;  // observables in the new universe
  std::uint64_t cones_reused = 0;  // whose digest matched the prior summary
  std::uint64_t combinations_skipped = 0;    // verdicts replayed from it
  std::uint64_t combinations_rechecked = 0;  // dirty, re-verified
};

struct VerifyStats {
  std::uint64_t combinations = 0;   // XOR-combinations enumerated
  std::uint64_t coefficients = 0;   // spectrum entries scanned/produced
  std::size_t num_observables = 0;  // outputs + probes in the universe
  CacheStats prefix_memo;           // convolution-prefix memo (per combination
                                    // prefix; summed across workers)
  CacheStats region_cache;          // row-check region/predicate cache
  std::uint64_t qinfo_entries = 0;      // union-check combinations recorded
  std::uint64_t qinfo_peak_bytes = 0;   // peak size of the union-check arena
  std::size_t frozen_nodes = 0;     // nodes in the Basis' frozen forest
  std::size_t frozen_bytes = 0;     // its serialized footprint
  double thaw_seconds = 0.0;        // frozen-forest import cost (summed
                                    // across workers when parallel)
  std::uint64_t dd_cache_hits = 0;    // manager computed-table hits
  std::uint64_t dd_cache_misses = 0;  // (summed across workers; 0 for the
                                      // scan engines)
  std::size_t dd_peak_nodes = 0;    // max private-manager peak node count
  int dd_cache_bits = 0;            // resolved computed-table size
                                    // (VerifyOptions::cache_bits; 0 for the
                                    // scan engines, which own no manager)
  std::uint64_t dd_gc_runs = 0;     // garbage collections (summed across
                                    // workers); the computed table survives
                                    // each one (only dead entries scrubbed)
  std::uint64_t dd_cache_survived = 0;  // entries kept across those GCs
  std::size_t dd_arena_bytes = 0;   // max node-store footprint (SoA arrays,
                                    // stamps, unique subtables) per worker
  std::uint64_t arena_convolutions = 0;  // flat merge-kernel invocations
                                         // (summed across workers)
  std::uint64_t arena_grows = 0;    // convolution-arena buffer growths; on a
                                    // warmed-up scan this plateaus while
                                    // convolutions keeps climbing — the
                                    // zero-per-combination-allocation
                                    // property the tests assert
  std::uint64_t arena_peak_bytes = 0;  // max arena footprint per worker
  IncrementalStats incremental;     // diff-aware scan record (--incremental)
  PortfolioStats portfolio;         // engine-selection record (kAuto runs)
  PhaseTimers timers;               // thaw / base / convolution /
                                    // verification / union (summed across
                                    // workers when parallel)
  ParallelStats parallel;
};

struct VerifyResult {
  bool secure = true;
  bool timed_out = false;
  std::optional<CounterExample> counterexample;
  /// Non-fatal diagnostics; surfaced by the sani CLI on stderr.
  std::vector<std::string> warnings;
  VerifyStats stats;
};

}  // namespace sani::verify
