#pragma once
// The verification execution core (internal header).
//
// Driver runs one engine backend over a shared, immutable verify::Basis and
// checks XOR-combinations of observables against the notion's spectral
// predicate.  It is consumed two ways:
//
//  * run() — the serial engines (verify/engine.cpp): full enumeration in
//    the configured search order, plus the set-level union pass.
//  * prepare() + run_shard() — the parallel runtime (verify/parallel.cpp):
//    pool workers execute contiguous rank ranges of the combination space.
//    Every engine shares the one prepared Basis; for the ADD engines
//    (MAPI/FUJITA) the Driver additionally owns a private dd::Manager and
//    thaws the Basis' frozen forest into it at construction
//    (Manager::import_forest) — no unfolding replay anywhere.
//
// Cancellation is cooperative: the sched::CancelToken (external, or an
// internal one armed from VerifyOptions::time_limit) is polled at every
// combination.  All mutable state is confined to the Driver; the Basis is
// read-only, so Drivers over one Basis run concurrently without sharing.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/unfold.h"
#include "dd/add.h"
#include "obs/metrics.h"
#include "sched/cancel.h"
#include "sched/shard.h"
#include "util/mask.h"
#include "verify/basis.h"
#include "verify/incremental.h"
#include "verify/observables.h"
#include "verify/predicate.h"
#include "verify/qinfo.h"
#include "verify/rowcheck.h"
#include "verify/types.h"

namespace sani::verify {

class Backend;
struct PartialReport;

class Driver {
 public:
  /// The Basis is the complete verification input for every engine.  When
  /// the engine's registry entry has needs_thaw (MAPI/FUJITA) the Driver
  /// creates a private dd::Manager and thaws the Basis' frozen forest into
  /// it here; the scan engines never touch a manager.  `cancel` may be
  /// null: the driver then arms an internal token from options.time_limit.
  /// An external token is polled but never armed.
  Driver(std::shared_ptr<const Basis> basis, const VerifyOptions& options,
         sched::CancelToken* cancel = nullptr);
  ~Driver();

  /// Full serial verification (enumeration + union pass).
  VerifyResult run();

  /// Arms the diff-aware scan: combinations `plan` classifies as clean are
  /// replayed instead of checked (null plan = cold scan), and every
  /// per-combination outcome is recorded into `collector` (null = no
  /// recording).  Either may be set independently; call before run() /
  /// run_shard().
  void set_incremental(const IncrementalPlan* plan,
                       SummaryCollector* collector) {
    plan_ = plan;
    collector_ = collector;
  }

  /// Credits the one-time basis build (base coefficients + "base" phase
  /// seconds) to this driver's stats.  The basis is built once and shared,
  /// so exactly one accounting site calls this: the serial entry points do;
  /// the parallel controller credits the merged result instead.
  void count_basis_build();

  // --- shard-mode API (parallel runtime) -----------------------------------

  /// A failure found inside a shard, tagged with its combination for the
  /// deterministic cross-worker merge.
  struct ShardFailure {
    std::vector<int> combo;
    CounterExample ce;
  };

  struct ShardOutcome {
    std::optional<ShardFailure> failure;  // first failure within the shard
    bool timed_out = false;               // deadline expired mid-shard
    bool abandoned = false;               // stopped: cannot beat best failure
  };

  /// Builds the backend (and, for the ADD engines, its manager-bound base).
  /// Idempotent; run_shard() calls it on first use.
  void prepare();

  /// Checks lexicographic ranks [shard.begin, shard.end) of the size-k
  /// combinations.  Stops at the shard's first failure, on deadline expiry,
  /// or — once the cancel token fires — at the first combination for which
  /// `still_relevant` returns false (the parallel controller passes the
  /// "is this combination still ordered before the best known failure?"
  /// predicate, which keeps the merged witness deterministic).
  void run_shard(const sched::Shard& shard,
                 const std::function<bool(const std::vector<int>&)>&
                     still_relevant,
                 ShardOutcome& out);

  /// run_shard() plus per-shard delta capture: the counters, phase seconds
  /// and union-check entries this shard contributed are snapshotted into
  /// `part` (the entries are *drained* out of the driver's own store — in
  /// shard-partial mode the PartialReport, not the driver, owns the
  /// merge-bound state).  With a null `still_relevant` and an unexpired
  /// token the resulting partial is complete: a pure function of (basis,
  /// options, shard), whatever ran before it on this driver.
  void run_shard_partial(const sched::Shard& shard,
                         const std::function<bool(const std::vector<int>&)>&
                             still_relevant,
                         ShardOutcome& out, PartialReport& part);

  /// Set-level union pass over an arbitrary (possibly merged) store.
  void union_pass_over(const QInfoStore& qinfo, VerifyResult& result);

  /// Union-check data accumulated so far (shard mode).
  const QInfoStore& qinfo() const { return qinfo_; }

  /// Counters accumulated by this driver (shard mode reads them per worker).
  const VerifyStats& stats() const { return stats_; }

  /// Peak node count of the private manager; 0 for the scan engines (they
  /// never touch a manager).
  std::size_t peak_nodes() const;

  /// Wall-clock cost of thawing the Basis' frozen forest into the private
  /// manager (0 for the scan engines).
  double thaw_seconds() const { return thaw_seconds_; }

  /// Private-manager counters (all zero for the scan engines).
  dd::ManagerStats manager_stats() const;

  /// Resolved computed-table size of the private manager (0 when there is
  /// no manager, i.e. for the scan engines).
  int manager_cache_bits() const;

  /// Node-store footprint of the private manager in bytes (0 without one).
  std::size_t manager_arena_bytes() const;

  /// Flat convolution-arena counters of this driver's backend (all zero for
  /// backends that do not convolve through an arena, e.g. LIL/FUJITA).
  const spectral::ArenaStats& arena_stats() const { return arena_stats_; }

 private:
  struct CheckFailure {
    Mask alpha;
    std::string reason;
  };

  RowContext context_for(const std::vector<int>& combo) const;
  RowContext context_for_path() const { return context_for(path_); }

  /// Checks the current path_ as one combination; failure data on failure.
  /// Ticks the progress meter, records the outcome into the collector and
  /// (when a metrics export was requested) samples the check latency into
  /// the per-rank histogram.
  std::optional<CheckFailure> check_current();
  std::optional<CheckFailure> check_current_impl();

  /// check_current() for an explicit combination, with the diff-aware
  /// classification in front: clean combinations replay their recorded
  /// verdict without touching the backend; dirty ones sync the prefix
  /// stack and check for real.
  std::optional<CheckFailure> check_combo(const std::vector<int>& combo);

  /// Rebuilds the backend stack so that path_ == combo, popping/pushing
  /// only the differing suffix (prefix sharing).
  void sync_path(const std::vector<int>& combo);

  CounterExample make_counterexample(const std::vector<int>& combo,
                                     const CheckFailure& failure) const;

  bool expired(VerifyResult& result);
  void dfs(int start, VerifyResult& result);
  /// dfs() in the same visit order, but routed through check_combo() so
  /// clean combinations skip the backend push entirely.
  void dfs_incremental(int start, std::vector<int>& combo,
                       VerifyResult& result);
  void largest_first(VerifyResult& result);

  /// Imports basis_->frozen into manager_ and wraps the roots in handles
  /// (records thaw_seconds_); empty for the scan engines.
  std::vector<dd::Add> thaw_roots();

  std::shared_ptr<const Basis> basis_;
  const VerifyOptions& options_;
  std::unique_ptr<dd::Manager> manager_;  // ADD engines: private thaw target
  double thaw_seconds_ = 0.0;
  std::vector<dd::Add> thawed_;  // handles over the thawed frozen roots
  std::unique_ptr<PredicateBuilder> preds_;
  RowCheck rowcheck_;
  std::unique_ptr<Backend> backend_;
  bool prepared_ = false;
  std::vector<int> path_;
  // Resolved per-rank latency histogram handles ("verify.check_ns.k<k>"),
  // indexed by combination size; filled lazily so the registry mutex stays
  // out of the enumeration loop.
  std::vector<obs::Histogram*> rank_hist_;
  QInfoStore qinfo_;
  const IncrementalPlan* plan_ = nullptr;
  SummaryCollector* collector_ = nullptr;
  std::vector<int> plan_scratch_;
  spectral::ArenaStats arena_stats_;
  VerifyStats stats_;
  sched::CancelToken own_cancel_;
  sched::CancelToken* cancel_;
};

}  // namespace sani::verify
