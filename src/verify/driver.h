#pragma once
// The verification execution core (internal header).
//
// Driver owns one engine backend over one dd::Manager and checks
// XOR-combinations of observables against the notion's spectral predicate.
// It is consumed two ways:
//
//  * run() — the serial engines (verify/engine.cpp): full enumeration in
//    the configured search order, plus the set-level union pass.
//  * prepare() + run_shard() — the parallel runtime (verify/parallel.cpp):
//    each pool worker constructs its own Driver over a private manager
//    (replayed unfolding) and executes contiguous rank ranges of the
//    combination space, sharing convolution prefixes between
//    lexicographically adjacent combinations exactly like the serial
//    largest-first walk.
//
// Cancellation is cooperative: the sched::CancelToken (external, or an
// internal one armed from VerifyOptions::time_limit) is polled at every
// combination.  All mutable state is confined to the Driver, so distinct
// Drivers on distinct managers run concurrently without sharing.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/unfold.h"
#include "sched/cancel.h"
#include "sched/shard.h"
#include "util/mask.h"
#include "verify/checker.h"
#include "verify/observables.h"
#include "verify/predicate.h"
#include "verify/types.h"

namespace sani::verify {

namespace detail {
class Backend;
}

/// Per-combination dependency data for the set-level union check.
struct QInfo {
  RowContext row;
  std::vector<Mask> V;  // per-secret deps of rows covering exactly this Q
};

/// Keyed by the combination's ascending observable indices.  Each
/// combination is checked exactly once across all shards, so per-worker
/// maps have disjoint key sets and merge trivially.
using QInfoMap = std::map<std::vector<int>, QInfo>;

class Driver {
 public:
  /// `cancel` may be null: the driver then arms an internal token from
  /// options.time_limit.  An external token is polled but never armed.
  Driver(const circuit::Unfolded& unfolded, const ObservableSet& obs,
         const VerifyOptions& options, sched::CancelToken* cancel = nullptr);
  ~Driver();

  /// Full serial verification (enumeration + union pass).
  VerifyResult run();

  // --- shard-mode API (parallel runtime) -----------------------------------

  /// A failure found inside a shard, tagged with its combination for the
  /// deterministic cross-worker merge.
  struct ShardFailure {
    std::vector<int> combo;
    CounterExample ce;
  };

  struct ShardOutcome {
    std::optional<ShardFailure> failure;  // first failure within the shard
    bool timed_out = false;               // deadline expired mid-shard
    bool abandoned = false;               // stopped: cannot beat best failure
  };

  /// Builds the backend and the per-observable base spectra ("base" phase).
  /// Idempotent; run_shard() calls it on first use.
  void prepare();

  /// Checks lexicographic ranks [shard.begin, shard.end) of the size-k
  /// combinations.  Stops at the shard's first failure, on deadline expiry,
  /// or — once the cancel token fires — at the first combination for which
  /// `still_relevant` returns false (the parallel controller passes the
  /// "is this combination still ordered before the best known failure?"
  /// predicate, which keeps the merged witness deterministic).
  void run_shard(const sched::Shard& shard,
                 const std::function<bool(const std::vector<int>&)>&
                     still_relevant,
                 ShardOutcome& out);

  /// Set-level union pass over an arbitrary (possibly merged) QInfo map.
  void union_pass_over(const QInfoMap& qinfo, VerifyResult& result);

  /// Union-check data accumulated so far (shard mode).
  const QInfoMap& qinfo() const { return qinfo_; }

  /// Counters accumulated by this driver (shard mode reads them per worker).
  const VerifyStats& stats() const { return stats_; }

  /// Peak node count of the underlying manager (per-worker DD pressure).
  std::size_t peak_nodes() const;

 private:
  struct CheckFailure {
    Mask alpha;
    std::string reason;
  };

  RowContext context_for_path() const;
  dd::Bdd violation_region(const RowContext& row);

  /// Checks the current path_ as one combination; failure data on failure.
  std::optional<CheckFailure> check_current();

  /// Rebuilds the backend stack so that path_ == combo, popping/pushing
  /// only the differing suffix (prefix sharing).
  void sync_path(const std::vector<int>& combo);

  CounterExample make_counterexample(const std::vector<int>& combo,
                                     const CheckFailure& failure) const;

  bool expired(VerifyResult& result);
  void dfs(int start, VerifyResult& result);
  void largest_first(VerifyResult& result);

  const circuit::Unfolded& unfolded_;
  const ObservableSet& obs_;
  const VerifyOptions& options_;
  Checker checker_;
  PredicateBuilder preds_;
  std::unique_ptr<detail::Backend> backend_;
  bool prepared_ = false;
  Mask relevant_publics_;
  std::vector<int> path_;
  QInfoMap qinfo_;
  VerifyStats stats_;
  sched::CancelToken own_cancel_;
  sched::CancelToken* cancel_;
};

}  // namespace sani::verify
