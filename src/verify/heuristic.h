#pragma once
// A maskVerif-style heuristic prover (Barthe et al. [8]) — the heuristic
// baseline of Table III.
//
// maskVerif proves security by semantic-preserving simplification of the
// symbolic leakage set; the workhorse rule is *optimistic sampling*: if an
// observed expression can be written e = r XOR g where the fresh random r
// occurs nowhere else in the tuple, then e is uniform and independent of the
// rest and can be discarded.  After the rules run dry, the tuple's remaining
// variable support over-approximates its dependency set:
//
//  * NI/SNI/PINI — if the support already satisfies the threshold, the
//    combination is proved secure;
//  * probing — if no secret has *all* of its shares in the support, no
//    coefficient of the averaged spectrum can touch the secret, so the
//    combination is proved secure.
//
// Anything else is *inconclusive*: the method is sound but incomplete for
// non-linear gadgets, exactly the trade-off the paper quotes maskVerif's
// authors on ("more precise approaches remain important, when verification
// with more efficient methods fail").

#include "circuit/spec.h"
#include "circuit/unfold.h"
#include "verify/observables.h"
#include "verify/types.h"

namespace sani::verify {

struct HeuristicResult {
  bool proven_secure = false;      // every combination proved
  bool timed_out = false;          // options.time_limit hit mid-enumeration
  std::uint64_t combinations = 0;  // combinations examined
  std::uint64_t inconclusive = 0;  // combinations the rules could not prove
  double seconds = 0.0;
};

HeuristicResult verify_heuristic(const circuit::Gadget& gadget,
                                 const VerifyOptions& options);

HeuristicResult verify_heuristic_prepared(const circuit::Unfolded& unfolded,
                                          const ObservableSet& observables,
                                          const VerifyOptions& options);

}  // namespace sani::verify
