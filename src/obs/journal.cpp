#include "obs/journal.h"

#include <unistd.h>

#include <cstdio>
#include <mutex>
#include <sstream>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace sani::obs {

namespace {

std::string render_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

const char* level_name(Journal::Level level) {
  switch (level) {
    case Journal::Level::kDebug: return "debug";
    case Journal::Level::kInfo: return "info";
    case Journal::Level::kWarn: return "warn";
    case Journal::Level::kError: return "error";
  }
  return "info";
}

}  // namespace

Journal::Field::Field(std::string k, const std::string& v)
    : key(std::move(k)), json("\"" + json_escape(v) + "\""), raw(v) {}
Journal::Field::Field(std::string k, const char* v)
    : Field(std::move(k), std::string(v)) {}
Journal::Field::Field(std::string k, std::uint64_t v)
    : key(std::move(k)), json(std::to_string(v)), raw(json) {}
Journal::Field::Field(std::string k, std::int64_t v)
    : key(std::move(k)), json(std::to_string(v)), raw(json) {}
Journal::Field::Field(std::string k, int v)
    : key(std::move(k)), json(std::to_string(v)), raw(json) {}
Journal::Field::Field(std::string k, double v)
    : key(std::move(k)), json(render_double(v)), raw(json) {}
Journal::Field::Field(std::string k, bool v)
    : key(std::move(k)), json(v ? "true" : "false"), raw(json) {}

struct Journal::Impl {
  std::mutex mu;
  Options options;
  std::FILE* file = nullptr;
  std::uint64_t file_bytes = 0;
  std::uint64_t lines = 0;
  std::uint64_t rotations = 0;

  void close_file() {
    if (file) {
      std::fclose(file);
      file = nullptr;
    }
    file_bytes = 0;
  }

  bool open_file(bool truncate) {
    close_file();
    if (options.path.empty()) return false;
    file = std::fopen(options.path.c_str(), truncate ? "w" : "a");
    if (!file) return false;
    std::fseek(file, 0, SEEK_END);
    long at = std::ftell(file);
    file_bytes = at > 0 ? static_cast<std::uint64_t>(at) : 0;
    return true;
  }

  void rotate() {
    close_file();
    const std::string old = options.path + ".1";
    std::remove(old.c_str());
    std::rename(options.path.c_str(), old.c_str());
    ++rotations;
    open_file(/*truncate=*/true);
  }
};

Journal& Journal::instance() {
  static Journal journal;
  return journal;
}

Journal::Impl& Journal::impl() const {
  static Impl impl;
  return impl;
}

void Journal::configure(const Options& options) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.close_file();
  im.options = options;
  bool file_ok = im.open_file(/*truncate=*/false);
  enabled_.store(file_ok || options.echo_stderr, std::memory_order_relaxed);
}

void Journal::close() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.close_file();
  im.options = Options{};
  enabled_.store(false, std::memory_order_relaxed);
}

void Journal::emit(Level level, const char* component, const char* event,
                   std::initializer_list<Field> fields) {
  if (!enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  if (level < im.options.min_level) return;

  std::ostringstream line;
  line << "{\"ts_ns\":" << Clock::now_ns() << ",\"pid\":" << ::getpid()
       << ",\"level\":\"" << level_name(level) << "\",\"component\":\""
       << json_escape(component) << "\",\"event\":\"" << json_escape(event)
       << "\"";
  for (const Field& f : fields)
    line << ",\"" << json_escape(f.key) << "\":" << f.json;
  line << "}\n";
  const std::string rendered = line.str();

  if (im.file) {
    // Rotate before the write that would cross the cap: the active file
    // never exceeds max_bytes (single oversized records excepted) and is
    // never left empty right after a rotation.
    if (im.file_bytes > 0 &&
        im.file_bytes + rendered.size() > im.options.max_bytes)
      im.rotate();
    if (im.file) {
      std::fwrite(rendered.data(), 1, rendered.size(), im.file);
      std::fflush(im.file);
      im.file_bytes += rendered.size();
    }
  }
  if (im.options.echo_stderr) {
    std::ostringstream echo;
    echo << component << ": " << event;
    for (const Field& f : fields) echo << " " << f.key << "=" << f.raw;
    echo << "\n";
    const std::string text = echo.str();
    std::fwrite(text.data(), 1, text.size(), stderr);
  }
  ++im.lines;
}

std::uint64_t Journal::lines_written() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.lines;
}

std::uint64_t Journal::rotations() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.rotations;
}

}  // namespace sani::obs
