#pragma once
// Structured event journal: leveled NDJSON records for the fleet's
// operational events (daemon lifecycle, scan planning/claims, store
// quarantines) — the machine-readable replacement for the ad-hoc stderr
// prints that used to live in sanid, `sani scan` and the store.
//
// Every record is one JSON object per line:
//
//   {"ts_ns":123,"pid":4242,"level":"info","component":"scan",
//    "event":"planned","shards":24,"dir":"/store/scans/ab12..."}
//
// `ts_ns` is the monotonic obs::Clock timestamp (same clock as traces, so
// journal lines can be correlated against trace spans), `pid` identifies
// the emitting worker in a multi-process fleet, and the remaining keys are
// caller-supplied fields.  Levels: debug < info < warn < error.
//
// Cost model mirrors the rest of src/obs: a disabled journal is one
// relaxed atomic load per emit() call site; an enabled journal takes a
// mutex and formats the line (journal call sites are cold control-plane
// paths — plan, claim-steal, quarantine — never per-combination loops).
//
// Sinks: an optional NDJSON file with size-capped rotation (when a record
// would push the file past max_bytes it is renamed to "<path>.1",
// replacing any previous rotation, and a fresh file is opened), plus an
// optional human-readable
// stderr echo ("component: event k=v ...") so CLI users keep the
// operator-visible one-liners they had before.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace sani::obs {

class Journal {
 public:
  enum class Level : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2,
                                    kError = 3 };

  /// One key/value field of a record.  The value is pre-rendered to JSON
  /// at the call site (strings escaped, numbers formatted), which keeps
  /// emit() a single pass over the list.
  struct Field {
    Field(std::string k, const std::string& v);
    Field(std::string k, const char* v);
    Field(std::string k, std::uint64_t v);
    Field(std::string k, std::int64_t v);
    Field(std::string k, int v);
    Field(std::string k, double v);
    Field(std::string k, bool v);

    std::string key;
    std::string json;  ///< rendered JSON value
    std::string raw;   ///< unquoted value for the stderr echo
  };

  struct Options {
    std::string path;                       ///< NDJSON sink; empty = none
    std::uint64_t max_bytes = 8ull << 20;   ///< rotation threshold
    bool echo_stderr = false;               ///< compact human echo
    Level min_level = Level::kInfo;
  };

  static Journal& instance();

  /// (Re)configures the sinks.  Enables the journal iff a file path or the
  /// stderr echo is requested.  Safe to call repeatedly (tests do).
  void configure(const Options& options);

  /// Flushes and drops the sinks; the journal reverts to disabled.
  void close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void emit(Level level, const char* component, const char* event,
            std::initializer_list<Field> fields = {});

  void debug(const char* component, const char* event,
             std::initializer_list<Field> fields = {}) {
    if (enabled()) emit(Level::kDebug, component, event, fields);
  }
  void info(const char* component, const char* event,
            std::initializer_list<Field> fields = {}) {
    if (enabled()) emit(Level::kInfo, component, event, fields);
  }
  void warn(const char* component, const char* event,
            std::initializer_list<Field> fields = {}) {
    if (enabled()) emit(Level::kWarn, component, event, fields);
  }
  void error(const char* component, const char* event,
             std::initializer_list<Field> fields = {}) {
    if (enabled()) emit(Level::kError, component, event, fields);
  }

  /// Test hooks.
  std::uint64_t lines_written() const;
  std::uint64_t rotations() const;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

 private:
  Journal() = default;

  struct Impl;
  Impl& impl() const;

  std::atomic<bool> enabled_{false};
};

}  // namespace sani::obs
