#include "obs/clock.h"

#include <algorithm>

namespace sani::obs {

void PhaseTimers::add(const std::string& name, double seconds) {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    names_.push_back(name);
    seconds_.push_back(seconds);
  } else {
    seconds_[static_cast<std::size_t>(it - names_.begin())] += seconds;
  }
}

double PhaseTimers::get(const std::string& name) const {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return 0.0;
  return seconds_[static_cast<std::size_t>(it - names_.begin())];
}

double PhaseTimers::total() const {
  double t = 0;
  for (double s : seconds_) t += s;
  return t;
}

void PhaseTimers::clear() {
  names_.clear();
  seconds_.clear();
}

}  // namespace sani::obs
