#pragma once
// Live progress heartbeat for the enumeration loops.
//
// A Progress object carries one relaxed-atomic "combinations checked"
// counter that every worker ticks (serial engines and the sharded parallel
// runtime alike — a relaxed fetch_add is safe and cheap from any number of
// threads), and an optional sampling thread that prints
//
//     checked/total (pct%) rate=N/s eta=Ss
//
// to stderr every interval_ms during enumeration.  The engines start/stop
// the meter around the enumeration once the probe-space size is known; the
// CLI only creates the object (and only when --progress was passed and
// stderr is a TTY — redirected runs stay clean).  The same counter feeds
// the tracer ("verify.checked" counter samples, one per heartbeat) and the
// cancellation diagnostics: the final line shows how far the enumeration
// got when a deadline or counterexample stopped it.

#include <atomic>
#include <cstdint>
#include <thread>

namespace sani::obs {

class Progress {
 public:
  struct Options {
    std::int64_t interval_ms = 500;  // heartbeat period
    bool use_stderr = true;          // false: heartbeat stays silent
                                     // (counters still tick; tests)
  };

  Progress() = default;
  explicit Progress(const Options& options) : options_(options) {}
  ~Progress() { stop(); }

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Starts a heartbeat over `total` combinations (0 = unknown).  Resets
  /// the counter; idempotent while running (restarts with the new total).
  void start(std::uint64_t total);

  /// Joins the sampling thread and prints the final "…done" line (TTY
  /// mode).  Safe to call twice; the destructor calls it.
  void stop();

  /// The hot-path hook: one relaxed increment.
  void tick(std::uint64_t n = 1) {
    checked_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t checked() const {
    return checked_.load(std::memory_order_relaxed);
  }
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  /// True when stderr is an interactive terminal (the --progress gate).
  static bool stderr_is_tty();

 private:
  void sampler_loop();
  void print_line(bool final_line);

  Options options_;
  std::atomic<std::uint64_t> checked_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<bool> running_{false};
  std::int64_t start_ns_ = 0;
  bool printed_ = false;  // sampler-thread / stop()-owner state
  std::thread sampler_;
};

}  // namespace sani::obs
