#pragma once
// The one monotonic time source of the project.
//
// Every timing mechanism — the verification phase timers, the cancellation
// deadline, the tracer's span timestamps, the bench harness stopwatches —
// reads obs::Clock, so all reported durations are mutually comparable and
// none of them can drift against each other (previously util/timer, the
// scheduler and the benches each called std::chrono on their own).
//
// The paper's Fig. 6 breaks verification time into "convolution" and
// "verification" phases; PhaseTimers accumulates named phase durations so
// the engines can report the same breakout.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace sani::obs {

/// Monotonic wall-clock access.  Nanoseconds since an arbitrary (but fixed
/// per process) epoch; differences are meaningful, absolute values are not.
struct Clock {
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static double to_seconds(std::int64_t ns) {
    return static_cast<double>(ns) * 1e-9;
  }
};

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(Clock::now_ns()) {}

  void reset() { start_ns_ = Clock::now_ns(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return Clock::to_seconds(Clock::now_ns() - start_ns_);
  }

 private:
  std::int64_t start_ns_;
};

/// Accumulates elapsed seconds under string labels ("convolution",
/// "verification", ...).  Not thread-safe; one instance per engine run.
class PhaseTimers {
 public:
  /// Adds `seconds` to phase `name`, creating it on first use.
  void add(const std::string& name, double seconds);

  /// Accumulated seconds for `name` (0.0 if the phase never ran).
  double get(const std::string& name) const;

  /// Sum over all phases.
  double total() const;

  /// Phase names in first-use order.
  const std::vector<std::string>& names() const { return names_; }

  void clear();

 private:
  std::vector<std::string> names_;
  std::vector<double> seconds_;
};

/// RAII phase scope: adds the elapsed time to `timers[name]` on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string name)
      : timers_(timers), name_(std::move(name)) {}
  ~ScopedPhase() { timers_.add(name_, watch_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace sani::obs

namespace sani {
// The stopwatch and phase timers predate src/obs and are used throughout
// the engines, benches and examples under their unqualified names.
using obs::PhaseTimers;
using obs::ScopedPhase;
using obs::Stopwatch;
}  // namespace sani
