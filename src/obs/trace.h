#pragma once
// Structured tracing: Chrome trace-event JSON for chrome://tracing and
// Perfetto (https://ui.perfetto.dev — "Open trace file").
//
// Design goals, in order:
//
//  1. Near-zero cost when disabled.  Every hook is an inline relaxed-atomic
//     flag check; no allocation, no clock read, no branch beyond the check.
//     The flag is process-global, so the hooks can sit inside the DD
//     manager's GC, the backend convolution loops and the scheduler without
//     measurable overhead on untraced runs (CI gates this).
//  2. Lock-free recording on the hot path.  Each thread owns a fixed-size
//     ring buffer of plain-old-data events; recording is an index bump and
//     a struct store.  The only locks are on the cold paths: first event of
//     a new thread (registry insert) and the final flush.
//  3. Bounded memory.  A ring holds kRingCapacity events; once it wraps,
//     the oldest events are overwritten (and counted as dropped), so a
//     pathological run can never trace itself out of memory.
//
// Span names are static strings drawn from the documented phase taxonomy
// (DESIGN.md Sec. 10): parse, unfold, basis_build, freeze, thaw, scan,
// convolution, add_check, union, gc, sift, the scheduler's per-task "task"
// spans, and the fleet phases added with checkpointable scans and the
// daemon: claim, checkpoint_write, checkpoint_load, finalize,
// admission_wait.  Counter events (ph:"C") sample the DD ManagerStats
// (live nodes, arena bytes, cache hit rate) and the enumeration progress.
//
// Thread ids in the emitted trace are small dense integers assigned on each
// thread's first event; sched::Pool labels its workers "worker N" via
// thread-name metadata so per-worker rows are recognizable in the viewer.
//
// Multi-process scans: every worker emits its real pid, an optional
// process_name metadata row (set_process_label) and the scan's trace id in
// the trace's otherData, so `sani trace-stitch` can merge per-worker files
// into one Perfetto view with one process row per worker.

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/clock.h"

namespace sani::obs {

/// Process-global trace collector.  All members are safe to call from any
/// thread; start()/stop()/write_json() are meant for the top of main().
class Tracer {
 public:
  static Tracer& instance();

  /// Begins capturing: clears previously captured events, re-bases the
  /// timestamp origin and raises the enabled flag.
  void start();

  /// Lowers the enabled flag; captured events are retained for write_json.
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span (ph:"X").  `start_ns` from Clock::now_ns().
  void complete(const char* name, std::int64_t start_ns, std::int64_t dur_ns);

  /// Records a counter sample (ph:"C"); Perfetto plots one series per name.
  void counter(const char* name, double value);

  /// Records an instant event (ph:"i"), e.g. a cancellation signal.
  void instant(const char* name);

  /// Names the calling thread "<prefix> <index>" in the trace (metadata,
  /// emitted once per thread per capture).  No-op when disabled.
  void label_thread(const char* prefix, int index);

  /// Names this process in the trace (process_name metadata row).  Unlike
  /// label_thread this is not gated on enabled(): callers set it once at
  /// startup, possibly before start().
  void set_process_label(const std::string& label);

  /// Attaches the fleet-wide trace/job id (minted at plan_scan or daemon
  /// submit); emitted as otherData.trace_id so trace-stitch can check that
  /// every per-worker file belongs to the same job.
  void set_trace_id(const std::string& id);
  std::string trace_id() const;

  /// Serializes everything captured since start() as Chrome trace JSON.
  /// Also callable after stop().  Returns the JSON object text.
  std::string to_json();

  /// to_json() to a file; false (with errno intact) when the file cannot
  /// be written.
  bool write_json(const std::string& path);

  /// Events overwritten because a thread's ring wrapped (0 in sane runs).
  std::uint64_t dropped() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;
  struct Impl;

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> t0_ns_{0};
};

/// RAII span: captures Clock::now_ns() at construction and records a
/// complete event at destruction.  When tracing is disabled the constructor
/// is one relaxed load and the destructor one branch.
class Span {
 public:
  explicit Span(const char* name)
      : name_(Tracer::instance().enabled() ? name : nullptr),
        start_ns_(name_ ? Clock::now_ns() : 0) {}

  ~Span() {
    if (name_)
      Tracer::instance().complete(name_, start_ns_,
                                  Clock::now_ns() - start_ns_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_;
};

}  // namespace sani::obs
