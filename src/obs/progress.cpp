#include "obs/progress.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "obs/clock.h"
#include "obs/trace.h"

namespace sani::obs {

bool Progress::stderr_is_tty() { return ::isatty(2) == 1; }

void Progress::start(std::uint64_t total) {
  stop();
  checked_.store(0, std::memory_order_relaxed);
  total_.store(total, std::memory_order_relaxed);
  start_ns_ = Clock::now_ns();
  printed_ = false;
  running_.store(true, std::memory_order_release);
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Progress::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (sampler_.joinable()) sampler_.join();
  print_line(/*final_line=*/true);
}

void Progress::sampler_loop() {
  // Poll in small slices so stop() never waits a full interval.
  const auto slice = std::chrono::milliseconds(20);
  std::int64_t next_ns = start_ns_ + options_.interval_ms * 1'000'000;
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(slice);
    if (Clock::now_ns() < next_ns) continue;
    next_ns += options_.interval_ms * 1'000'000;
    print_line(/*final_line=*/false);
    // The heartbeat doubles as the tracer's progress sampler.
    Tracer::instance().counter("verify.checked",
                               static_cast<double>(checked()));
  }
}

void Progress::print_line(bool final_line) {
  if (!options_.use_stderr) return;
  const std::uint64_t done = checked();
  const std::uint64_t all = total();
  const double elapsed =
      Clock::to_seconds(Clock::now_ns() - start_ns_);
  const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
  char line[160];
  if (all > 0) {
    const double pct = 100.0 * static_cast<double>(done) /
                       static_cast<double>(all);
    const double eta =
        rate > 0 ? static_cast<double>(all - done) / rate : 0.0;
    std::snprintf(line, sizeof line,
                  "\r%llu/%llu (%.1f%%) rate=%.0f/s eta=%.1fs   ",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(all), pct, rate, eta);
  } else {
    std::snprintf(line, sizeof line, "\r%llu checked rate=%.0f/s   ",
                  static_cast<unsigned long long>(done), rate);
  }
  std::fputs(line, stderr);
  printed_ = true;
  if (final_line && printed_) std::fputc('\n', stderr);
  std::fflush(stderr);
}

}  // namespace sani::obs
