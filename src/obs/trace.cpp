#include "obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace sani::obs {

namespace {

/// Events per thread; at 40 bytes each a full ring is ~2.6 MB.  The hot
/// spans are per-shard and per-combination, so even keccak-scale runs sit
/// well below this; a wrap drops the oldest events and is reported.
constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

struct Event {
  const char* name;      // static string (phase taxonomy)
  std::int64_t ts_ns;    // Clock::now_ns() at event start
  std::int64_t dur_ns;   // 'X' spans only
  double value;          // 'C' counters only
  char ph;               // 'X' complete, 'C' counter, 'i' instant
};

struct ThreadBuf {
  std::uint32_t tid = 0;
  std::string label;                 // thread-name metadata; owner-written
  std::vector<Event> events;         // fixed ring of kRingCapacity slots
  std::atomic<std::uint64_t> count{0};  // events ever written this capture

  explicit ThreadBuf(std::uint32_t id) : tid(id), events(kRingCapacity) {}

  void push(const Event& e) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    events[static_cast<std::size_t>(n % kRingCapacity)] = e;
    count.store(n + 1, std::memory_order_release);
  }
};

}  // namespace

struct Tracer::Impl {
  std::mutex mu;  // guards the registry vector (cold: thread birth, flush)
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::string process_label;  // process_name metadata row, "" = none
  std::string trace_id;       // fleet job id, "" = standalone run

  static Impl& get() {
    static Impl impl;
    return impl;
  }

  ThreadBuf& local_buf() {
    thread_local ThreadBuf* tl = nullptr;
    if (!tl) {
      std::lock_guard<std::mutex> lk(mu);
      bufs.push_back(
          std::make_unique<ThreadBuf>(static_cast<std::uint32_t>(bufs.size())));
      tl = bufs.back().get();
    }
    return *tl;
  }
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start() {
  Impl& impl = Impl::get();
  {
    std::lock_guard<std::mutex> lk(impl.mu);
    for (auto& b : impl.bufs) {
      b->count.store(0, std::memory_order_relaxed);
      b->label.clear();
    }
  }
  t0_ns_.store(Clock::now_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::complete(const char* name, std::int64_t start_ns,
                      std::int64_t dur_ns) {
  if (!enabled()) return;
  Impl::get().local_buf().push(Event{name, start_ns, dur_ns, 0.0, 'X'});
}

void Tracer::counter(const char* name, double value) {
  if (!enabled()) return;
  Impl::get().local_buf().push(Event{name, Clock::now_ns(), 0, value, 'C'});
}

void Tracer::instant(const char* name) {
  if (!enabled()) return;
  Impl::get().local_buf().push(Event{name, Clock::now_ns(), 0, 0.0, 'i'});
}

void Tracer::label_thread(const char* prefix, int index) {
  if (!enabled()) return;
  ThreadBuf& buf = Impl::get().local_buf();
  if (!buf.label.empty()) return;
  buf.label = std::string(prefix) + " " + std::to_string(index);
}

void Tracer::set_process_label(const std::string& label) {
  Impl& impl = Impl::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  impl.process_label = label;
}

void Tracer::set_trace_id(const std::string& id) {
  Impl& impl = Impl::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  impl.trace_id = id;
}

std::string Tracer::trace_id() const {
  Impl& impl = Impl::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  return impl.trace_id;
}

std::uint64_t Tracer::dropped() const {
  Impl& impl = Impl::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  std::uint64_t dropped = 0;
  for (const auto& b : impl.bufs) {
    const std::uint64_t n = b->count.load(std::memory_order_acquire);
    if (n > kRingCapacity) dropped += n - kRingCapacity;
  }
  return dropped;
}

std::string Tracer::to_json() {
  // Flushing is a cold, quiescent-point operation: the caller stops tracing
  // (or at least stops the traced workload) before serializing.  Events
  // recorded concurrently with the flush may or may not appear.
  Impl& impl = Impl::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  const std::int64_t t0 = t0_ns_.load(std::memory_order_relaxed);
  const long pid = static_cast<long>(::getpid());

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  auto us = [&](std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
    return std::string(buf);
  };
  if (!impl.process_label.empty()) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << json_escape(impl.process_label) << "\"}}";
  }
  for (const auto& b : impl.bufs) {
    if (!b->label.empty()) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << b->tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << b->label
         << "\"}}";
    }
    const std::uint64_t n = b->count.load(std::memory_order_acquire);
    const std::uint64_t begin = n > kRingCapacity ? n - kRingCapacity : 0;
    for (std::uint64_t i = begin; i < n; ++i) {
      const Event& e = b->events[static_cast<std::size_t>(i % kRingCapacity)];
      sep();
      os << "{\"ph\":\"" << e.ph << "\",\"pid\":" << pid
         << ",\"tid\":" << b->tid << ",\"name\":\"" << e.name
         << "\",\"cat\":\"sani\",\"ts\":" << us(e.ts_ns - t0);
      if (e.ph == 'X') os << ",\"dur\":" << us(e.dur_ns);
      if (e.ph == 'C') os << ",\"args\":{\"value\":" << e.value << "}";
      if (e.ph == 'i') os << ",\"s\":\"t\"";
      os << "}";
    }
  }
  os << "\n]";
  if (!impl.trace_id.empty())
    os << ",\"otherData\":{\"trace_id\":\"" << json_escape(impl.trace_id)
       << "\"}";
  os << "}";
  return os.str();
}

bool Tracer::write_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out.flush());
}

}  // namespace sani::obs
