#pragma once
// Process-level health gauges for long-lived hosts (the sanid daemon, CI
// harnesses).
//
// sample_process_gauges() refreshes two gauges in the Metrics registry:
//
//   * process.rss_bytes       — resident set size, read from
//                               /proc/self/statm (Linux); getrusage
//                               ru_maxrss (peak, not current) is the
//                               fallback where /proc is absent;
//   * process.uptime_seconds  — seconds since the first call in this
//                               process (monotonic clock, so NTP steps
//                               can't make a daemon's uptime jump).
//
// Sampling is pull-based: one-shot tools sample once before exporting, the
// daemon samples on every STATS request — nothing ticks in the background.

#include <cstdint>

namespace sani::obs {

/// Current resident set size in bytes; 0 when no source is available.
std::uint64_t process_rss_bytes();

/// Seconds since the first call to any function in this header.
double process_uptime_seconds();

/// Writes both values into Metrics ("process.rss_bytes",
/// "process.uptime_seconds") and returns the RSS sampled.
std::uint64_t sample_process_gauges();

}  // namespace sani::obs
