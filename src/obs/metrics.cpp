#include "obs/metrics.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace sani::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

struct Metrics::Impl {
  mutable std::mutex mu;
  // std::map keeps the dump sorted by construction — the "stable order"
  // the stats tests assert on.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

Metrics::Impl& Metrics::impl() const {
  static Impl impl;
  return impl;
}

Counter& Metrics::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Metrics::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [name, c] : im.counters) c->set(0);
  for (auto& [name, g] : im.gauges) g->set(0.0);
  for (auto& [name, h] : im.histograms) h->reset();
}

namespace {

/// Renders every instrument as (name, json value) pairs, globally sorted by
/// name across the three kinds — the one ordering both dumps share.
std::map<std::string, std::string> render_sorted(const Metrics::Impl& im) {
  std::map<std::string, std::string> out;
  for (const auto& [name, c] : im.counters)
    out[name] = std::to_string(c->value());
  for (const auto& [name, g] : im.gauges) {
    std::ostringstream os;
    os << g->value();
    out[name] = os.str();
  }
  for (const auto& [name, h] : im.histograms) {
    std::ostringstream os;
    os << "{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << i << "," << n << "]";
    }
    os << "]}";
    out[name] = os.str();
  }
  return out;
}

}  // namespace

std::string Metrics::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : render_sorted(im)) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "}";
  return os.str();
}

std::string Metrics::to_text(const std::string& indent) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::ostringstream os;
  for (const auto& [name, value] : render_sorted(im))
    os << indent << name << " " << value << "\n";
  return os.str();
}

}  // namespace sani::obs
