#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace sani::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * total), clamped to >= 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = bucket(i);
    if (n == 0) continue;
    if (cum + n >= rank) {
      // Bucket i spans [lo, hi): [0,2) for i == 0, [2^i, 2^(i+1)) above.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double within =
          (static_cast<double>(rank - cum) - 0.5) / static_cast<double>(n);
      return lo + within * (hi - lo);
    }
    cum += n;
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets));
}

struct Metrics::Impl {
  mutable std::mutex mu;
  // std::map keeps the dump sorted by construction — the "stable order"
  // the stats tests assert on.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

Metrics::Impl& Metrics::impl() const {
  static Impl impl;
  return impl;
}

Counter& Metrics::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Metrics::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [name, c] : im.counters) c->set(0);
  for (auto& [name, g] : im.gauges) g->set(0.0);
  for (auto& [name, h] : im.histograms) h->reset();
}

namespace {

/// Renders every instrument as (name, json value) pairs, globally sorted by
/// name across the three kinds — the one ordering both dumps share.
std::map<std::string, std::string> render_sorted(const Metrics::Impl& im) {
  std::map<std::string, std::string> out;
  for (const auto& [name, c] : im.counters)
    out[name] = std::to_string(c->value());
  for (const auto& [name, g] : im.gauges) {
    std::ostringstream os;
    os << g->value();
    out[name] = os.str();
  }
  for (const auto& [name, h] : im.histograms) {
    std::ostringstream os;
    os << "{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"p50\":" << h->quantile(0.50) << ",\"p95\":" << h->quantile(0.95)
       << ",\"p99\":" << h->quantile(0.99) << ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << i << "," << n << "]";
    }
    os << "]}";
    out[name] = os.str();
  }
  return out;
}

}  // namespace

std::string Metrics::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : render_sorted(im)) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "}";
  return os.str();
}

std::string Metrics::to_text(const std::string& indent) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::ostringstream os;
  for (const auto& [name, value] : render_sorted(im))
    os << indent << name << " " << value << "\n";
  return os.str();
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

/// Formats a power-of-two bucket bound exactly (2^64 overflows uint64, so
/// go through long double and print with no fraction).
std::string pow2_label(int exp) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0Lf", std::pow(2.0L, exp));
  return buf;
}

}  // namespace

std::string Metrics::dump_prometheus() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::ostringstream os;
  // One pass per kind, but emit in a single name-sorted stream so scrapes
  // are stable (same contract as to_text).  Counters and gauges are
  // scalars; histograms expand to the cumulative series.
  struct Entry {
    std::string type;
    std::string body;
  };
  std::map<std::string, Entry> out;
  for (const auto& [name, c] : im.counters) {
    const std::string pn = prometheus_name(name);
    out[pn] = {"counter", pn + " " + std::to_string(c->value()) + "\n"};
  }
  for (const auto& [name, g] : im.gauges) {
    const std::string pn = prometheus_name(name);
    std::ostringstream v;
    v << pn << " " << g->value() << "\n";
    out[pn] = {"gauge", v.str()};
  }
  for (const auto& [name, h] : im.histograms) {
    const std::string pn = prometheus_name(name);
    std::ostringstream v;
    std::uint64_t cum = 0;
    std::size_t highest = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      if (h->bucket(i) != 0) highest = i;
    for (std::size_t i = 0; i <= highest; ++i) {
      cum += h->bucket(i);
      v << pn << "_bucket{le=\"" << pow2_label(static_cast<int>(i) + 1)
        << "\"} " << cum << "\n";
    }
    v << pn << "_bucket{le=\"+Inf\"} " << h->count() << "\n";
    v << pn << "_sum " << h->sum() << "\n";
    v << pn << "_count " << h->count() << "\n";
    out[pn] = {"histogram", v.str()};
  }
  for (const auto& [pn, entry] : out)
    os << "# TYPE " << pn << " " << entry.type << "\n" << entry.body;
  return os.str();
}

}  // namespace sani::obs
