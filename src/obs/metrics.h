#pragma once
// Central metrics registry: named counters, gauges and log2-bucket
// histograms with a deterministic (sorted) dump.
//
// The registry unifies the counters that used to live scattered across
// dd::ManagerStats, verify::VerifyStats and the parallel merge: one naming
// scheme ("verify.combinations", "dd.cache_hits", ...), one export path.
// Consumers:
//
//   * verify::json_report embeds the registry as the report's "metrics"
//     object;
//   * `sani --metrics-out FILE` writes the same object standalone;
//   * `sani stats` prints the text dump (sorted, stable order — tests
//     assert on it).
//
// Cost model: counters and gauges are relaxed atomics — always writable,
// negligible on any path this project has.  Histogram *timing* call sites
// are the exception (they need a clock read per sample), so they gate on
// Metrics::enabled(); the flag is raised by the CLI when an export was
// requested.  Instrument handles returned by counter()/gauge()/histogram()
// are stable for the process lifetime: resolve once, then record lock-free.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace sani::obs {

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes and all control characters (RFC 8259).  The one escaping
/// routine shared by the metrics dump, verify::json_report and the bench
/// harness JSON writers.
std::string json_escape(const std::string& s);

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins floating-point value (rates, byte totals, seconds).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over fixed log2 buckets: bucket i counts samples v with
/// 2^i <= v < 2^(i+1) (v == 0 lands in bucket 0).  Suited to latencies in
/// nanoseconds: 64 buckets cover the full uint64 range with no config.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Quantile estimate (q in [0,1]) from the log2 buckets: finds the
  /// bucket holding the q-th sample and interpolates linearly inside its
  /// [2^i, 2^(i+1)) range.  Exact to within one bucket width — plenty for
  /// p50/p95/p99 latency summaries.  Returns 0 for an empty histogram.
  double quantile(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// The process-global registry.  Instrument lookup takes a mutex (resolve
/// handles once, outside hot loops); recording through a handle is
/// lock-free.
class Metrics {
 public:
  static Metrics& instance();

  /// Gates the *timed* collection sites (histogram samples need a clock
  /// read per event).  Counters and gauges ignore this flag.
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered instrument (instruments stay registered and
  /// handles stay valid) — call between runs for a per-run export.
  void reset();

  /// JSON object keyed by metric name, sorted: counters as integers,
  /// gauges as doubles, histograms as {count, sum, buckets:[[log2,n],..]}.
  std::string to_json() const;

  /// "name value" per line, sorted by name — the `sani stats` dump.
  /// Histograms print their count and sum.
  std::string to_text(const std::string& indent = "") const;

  /// Prometheus text exposition format 0.0.4, sorted by metric name.
  /// Counters and gauges map directly; log2 histograms render as the
  /// cumulative `_bucket{le="..."}` / `_sum` / `_count` series Prometheus
  /// expects, with `le` at each power-of-two upper bound that has samples.
  /// Metric names are sanitized to [a-zA-Z0-9_:] ("dd.live_nodes" →
  /// "dd_live_nodes").
  std::string dump_prometheus() const;

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  struct Impl;  // public so the dump helpers in metrics.cpp can name it

 private:
  Metrics() = default;
  Impl& impl() const;

  std::atomic<bool> enabled_{false};
};

}  // namespace sani::obs
