#include "obs/process.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace sani::obs {

namespace {

// The uptime epoch is the first touch of this translation unit's clock,
// captured eagerly so process_uptime_seconds() measures from early in the
// process life rather than from the first STATS request.
const std::int64_t kStartNs = Clock::now_ns();

std::uint64_t rss_from_proc() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size = 0, resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

std::uint64_t rss_from_rusage() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is the *peak* RSS in kilobytes on Linux (bytes on macOS, but
  // this project targets Linux CI); a peak is still a useful upper bound
  // when /proc is unavailable.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace

std::uint64_t process_rss_bytes() {
  const std::uint64_t rss = rss_from_proc();
  return rss ? rss : rss_from_rusage();
}

double process_uptime_seconds() {
  return Clock::to_seconds(Clock::now_ns() - kStartNs);
}

std::uint64_t sample_process_gauges() {
  const std::uint64_t rss = process_rss_bytes();
  auto& m = Metrics::instance();
  m.gauge("process.rss_bytes").set(static_cast<double>(rss));
  m.gauge("process.uptime_seconds").set(process_uptime_seconds());
  return rss;
}

}  // namespace sani::obs
