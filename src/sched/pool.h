#pragma once
// Work-stealing thread pool for the verification runtime.
//
// Design: persistent worker threads (spawned once, parked between jobs) and
// one task deque per worker.  run() deals task indices round-robin across
// the deques; each worker drains its own deque front-to-back — preserving
// ascending shard order, which is what lets the verification backend reuse
// convolution prefixes between adjacent shards — and steals from the *back*
// of a victim's deque when its own runs dry.  Back-stealing hands thieves
// the work farthest from the victim's current position, so prefix locality
// is disturbed as little as possible.
//
// Tasks are plain indices; all task state lives with the caller.  Per-worker
// state (the verification runtime's per-worker Drivers and their private
// dd::Managers) is keyed by the `worker` id passed to the task function: a
// slot is only ever touched by the worker that owns it.
//
// The pool does not cancel running tasks — cancellation is cooperative via
// sched::CancelToken, polled inside the task body.  An exception thrown by
// a task is captured (first one wins), the remaining tasks still run, and
// run() rethrows after the job drains.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace sani::sched {

struct PoolStats {
  std::uint64_t tasks_run = 0;     // tasks executed in the last job
  std::uint64_t tasks_stolen = 0;  // of those, run by a non-owner worker
};

class Pool {
 public:
  /// Spawns `threads` persistent workers (clamped to >= 1).
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const;

  /// fn(worker, task) with worker in [0, threads()) and each task index in
  /// [0, num_tasks) executed exactly once.  Blocks until every task ran;
  /// rethrows the first task exception.  Not reentrant: one job at a time.
  using TaskFn = std::function<void(int worker, std::size_t task)>;
  PoolStats run(std::size_t num_tasks, const TaskFn& fn);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int hardware_threads();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Resolves a requested worker count to the count actually used: 0 expands
/// to hardware_threads(), anything below 1 clamps to 1.  The single policy
/// site for the "--jobs 0" convention — callers record the return value.
int default_jobs(int requested);

}  // namespace sani::sched
