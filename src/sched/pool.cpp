#include "sched/pool.h"

#include "obs/trace.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sani::sched {

struct Pool::Impl {
  // One deque per worker; the owner pops the front, thieves pop the back.
  // A plain mutex per deque is enough here: tasks are verification shards
  // (milliseconds to seconds each), so queue operations are never hot.
  struct TaskDeque {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  explicit Impl(int n) : nthreads(n) {
    deques.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) deques.push_back(std::make_unique<TaskDeque>());
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      workers.emplace_back([this, i] { worker_loop(i); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(job_mu);
      stopping = true;
    }
    job_cv.notify_all();
    for (auto& t : workers) t.join();
  }

  /// Pops the next task: own deque front first, then steal from the back of
  /// the other deques (scanning from id+1 so thieves spread out).
  bool try_pop(int id, std::size_t* task, bool* stolen) {
    {
      TaskDeque& own = *deques[static_cast<std::size_t>(id)];
      std::lock_guard<std::mutex> lk(own.mu);
      if (!own.tasks.empty()) {
        *task = own.tasks.front();
        own.tasks.pop_front();
        *stolen = false;
        return true;
      }
    }
    for (int off = 1; off < nthreads; ++off) {
      TaskDeque& victim =
          *deques[static_cast<std::size_t>((id + off) % nthreads)];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.tasks.empty()) {
        *task = victim.tasks.back();
        victim.tasks.pop_back();
        *stolen = true;
        return true;
      }
    }
    return false;
  }

  void worker_loop(int id) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const TaskFn* fn = nullptr;
      {
        std::unique_lock<std::mutex> lk(job_mu);
        job_cv.wait(lk, [&] {
          return stopping || generation != seen_generation;
        });
        if (stopping) return;
        seen_generation = generation;
        fn = task_fn;
      }
      // The trace tid of this OS thread maps to "worker <id>": the tracer
      // assigns tids per thread, the label ties them to pool worker ids.
      obs::Tracer::instance().label_thread("worker", id);
      std::size_t task = 0;
      bool stolen = false;
      while (try_pop(id, &task, &stolen)) {
        if (stolen) stolen_count.fetch_add(1, std::memory_order_relaxed);
        try {
          obs::Span span("task");
          (*fn)(id, task);
        } catch (...) {
          std::lock_guard<std::mutex> lk(job_mu);
          if (!error) error = std::current_exception();
        }
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
      // All deques empty: nothing left of this job for us (tasks are only
      // enqueued before the generation bump, never during a job).  Parking
      // the worker *under the lock* before run() can return closes the
      // window where a straggler could pop tasks of the next job while
      // still holding the previous job's function pointer.
      {
        std::lock_guard<std::mutex> lk(job_mu);
        ++workers_parked;
        done_cv.notify_all();
      }
    }
  }

  const int nthreads;
  std::vector<std::unique_ptr<TaskDeque>> deques;
  std::vector<std::thread> workers;

  std::mutex job_mu;
  std::condition_variable job_cv;   // workers: a new job (or shutdown)
  std::condition_variable done_cv;  // run(): the job drained
  std::uint64_t generation = 0;
  bool stopping = false;
  int workers_parked = 0;    // workers done with the current generation
  const TaskFn* task_fn = nullptr;
  std::exception_ptr error;  // first task exception, guarded by job_mu

  std::atomic<std::size_t> remaining{0};
  std::atomic<std::uint64_t> stolen_count{0};
};

Pool::Pool(int threads) : impl_(std::make_unique<Impl>(threads < 1 ? 1 : threads)) {}

Pool::~Pool() = default;

int Pool::threads() const { return impl_->nthreads; }

PoolStats Pool::run(std::size_t num_tasks, const TaskFn& fn) {
  PoolStats stats;
  if (num_tasks == 0) return stats;
  {
    std::lock_guard<std::mutex> lk(impl_->job_mu);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      auto& dq = *impl_->deques[t % static_cast<std::size_t>(impl_->nthreads)];
      std::lock_guard<std::mutex> dlk(dq.mu);
      dq.tasks.push_back(t);
    }
    impl_->task_fn = &fn;
    impl_->error = nullptr;
    impl_->workers_parked = 0;
    impl_->remaining.store(num_tasks, std::memory_order_release);
    impl_->stolen_count.store(0, std::memory_order_release);
    ++impl_->generation;
  }
  impl_->job_cv.notify_all();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(impl_->job_mu);
    impl_->done_cv.wait(lk, [&] {
      return impl_->remaining.load(std::memory_order_acquire) == 0 &&
             impl_->workers_parked == impl_->nthreads;
    });
    impl_->task_fn = nullptr;
    error = impl_->error;
  }
  stats.tasks_run = num_tasks;
  stats.tasks_stolen = impl_->stolen_count.load(std::memory_order_acquire);
  if (error) std::rethrow_exception(error);
  return stats;
}

int Pool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int default_jobs(int requested) {
  if (requested == 0) return Pool::hardware_threads();
  return requested < 1 ? 1 : requested;
}

}  // namespace sani::sched
