#include "sched/cancel.h"

#include "obs/clock.h"
#include "obs/trace.h"

namespace sani::sched {

std::int64_t CancelToken::now_ns() { return obs::Clock::now_ns(); }

void CancelToken::set_deadline_after(double seconds) {
  if (seconds <= 0) {
    deadline_ns_.store(0, std::memory_order_release);
    return;
  }
  deadline_ns_.store(now_ns() + static_cast<std::int64_t>(seconds * 1e9),
                     std::memory_order_release);
}

void CancelToken::cancel() {
  std::int64_t expected = 0;
  cancel_ns_.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_acq_rel);
  cancelled_.store(true, std::memory_order_release);
  obs::Tracer::instance().instant("cancel");
}

bool CancelToken::expired() const {
  const std::int64_t d = deadline_ns_.load(std::memory_order_acquire);
  return d != 0 && now_ns() >= d;
}

void CancelToken::acknowledge() {
  // The signal instant: the first cancel() if one happened, else the
  // deadline (when expired).  Latency = now - signal.
  std::int64_t signal = cancel_ns_.load(std::memory_order_acquire);
  if (signal == 0) {
    const std::int64_t d = deadline_ns_.load(std::memory_order_acquire);
    if (d == 0 || now_ns() < d) return;  // nothing to acknowledge
    signal = d;
  }
  const std::int64_t latency = now_ns() - signal;
  std::int64_t prev = max_latency_ns_.load(std::memory_order_relaxed);
  while (latency > prev &&
         !max_latency_ns_.compare_exchange_weak(prev, latency,
                                                std::memory_order_acq_rel)) {
  }
}

double CancelToken::max_ack_latency() const {
  return static_cast<double>(max_latency_ns_.load(std::memory_order_acquire)) *
         1e-9;
}

}  // namespace sani::sched
