#pragma once
// Cooperative cancellation for the verification runtime.
//
// A CancelToken carries two independent stop signals that workers poll at
// combination and shard boundaries (the dd::Manager has no interruption
// points of its own, so cancellation is cooperative by construction):
//
//  * cancel()    — an explicit request, raised e.g. when one worker finds a
//                  counterexample and the remaining probe-space shards can
//                  no longer improve on it;
//  * a deadline  — set_deadline_after(s) arms a wall-clock budget
//                  (--time-limit); expired() turns true once it passes.
//
// Workers call acknowledge() when they observe a signal and stop; the token
// records the maximum signal-to-acknowledge gap ("cancel latency"), which
// verify::Report surfaces so shard sizing can be tuned against
// responsiveness.
//
// All members are safe to call concurrently from any thread.

#include <atomic>
#include <cstdint>

namespace sani::sched {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms the deadline `seconds` from now; seconds <= 0 disarms it.
  void set_deadline_after(double seconds);

  /// Raises the explicit cancellation signal (idempotent).
  void cancel();

  /// True once cancel() has been called.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True once the armed deadline has passed (false when disarmed).
  bool expired() const;

  /// Either signal: the cooperative "should I stop?" poll.
  bool stop_requested() const { return cancelled() || expired(); }

  /// Records that this thread observed a stop signal and is stopping now;
  /// updates the latency high-water mark.  No-op if no signal is active.
  void acknowledge();

  /// Maximum seconds between a signal (cancel() call or deadline expiry)
  /// and a worker's acknowledge(); 0 when never signalled/acknowledged.
  double max_ack_latency() const;

 private:
  static std::int64_t now_ns();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};   // steady-clock ns; 0 = none
  std::atomic<std::int64_t> cancel_ns_{0};     // time of first cancel()
  std::atomic<std::int64_t> max_latency_ns_{0};
};

}  // namespace sani::sched
