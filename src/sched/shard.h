#pragma once
// Probe-space sharding for parallel verification.
//
// The verification workload is the enumeration of all C(n, k) combinations
// of observables for k = 1..d (Sec. III of the paper's cost model).  Each
// size-k combination has a lexicographic rank in the combinatorial number
// system (util/combinations), so the whole space factors into contiguous
// rank ranges — shards — that workers execute independently.  Contiguity
// matters twice: within a shard the backend reuses convolution prefixes of
// lexicographically adjacent combinations, and the deterministic merge only
// needs each shard's locally-first failure to recover the globally smallest
// one.

#include <cstdint>
#include <vector>

namespace sani::sched {

/// A contiguous slice of the size-k combination space: lexicographic ranks
/// [begin, end) of the C(n, k) combinations.
struct Shard {
  int k = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
};

struct ShardPlanOptions {
  /// Target shards per worker per size class; >1 gives the work-stealing
  /// pool slack to rebalance uneven shard costs.
  int oversubscribe = 8;
  /// Never split below this many combinations (per-shard setup amortization).
  std::uint64_t min_size = 8;
  /// Never grow beyond this many combinations: bounds the cooperative
  /// cancellation latency, since tokens are polled per combination but
  /// shards are claimed whole.
  std::uint64_t max_size = 4096;
  /// Nonzero: exact shard size, overriding the auto sizing (tests/bench).
  std::uint64_t fixed_size = 0;
};

/// Partitions all combinations of sizes 1..d over n observables into
/// contiguous shards.  Shards are emitted in the serial engine's size order
/// (sizes ascending for depth-first search, descending for the paper's
/// largest-first strategy) with ranks ascending within a size; together the
/// ranges cover every combination exactly once.
std::vector<Shard> plan_shards(int n, int d, int workers, bool largest_first,
                               const ShardPlanOptions& options = {});

}  // namespace sani::sched
