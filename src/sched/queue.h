#pragma once
// Bounded, priority-ordered admission queue for the sanid daemon.
//
// sched::Pool is a batch/barrier executor: run() blocks until a whole shard
// plan drains, so it cannot also be the structure that *admits* work from
// many concurrent clients.  AdmissionQueue fills that gap: connection
// handlers push jobs (rejecting when full, so a flooding client gets
// backpressure instead of unbounded daemon memory), a small set of executor
// threads block in pop() and run each job on the Pool.
//
// Ordering: higher priority first; within a priority, FIFO by admission
// sequence — two equal-priority jobs never reorder, which keeps daemon
// behavior reproducible.
//
// Shutdown: close() wakes every blocked pop(), which then returns false.
// Jobs still queued at close() are dropped (the daemon reports them as
// rejected); jobs already popped run to completion.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

namespace sani::sched {

template <typename Job>
class AdmissionQueue {
 public:
  /// `capacity` bounds the number of queued (admitted, not yet popped)
  /// jobs; 0 means unbounded.
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits a job.  Returns false — without blocking — when the queue is
  /// full or closed.
  bool try_push(Job job, int priority) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (capacity_ != 0 && heap_.size() >= capacity_) return false;
    heap_.push(Entry{priority, next_seq_++, std::move(job)});
    cv_.notify_one();
    return true;
  }

  /// Blocks until a job is available or the queue is closed.  Returns
  /// nullopt on close (remaining jobs are NOT drained — callers that must
  /// fail them take them out with drain() first).
  std::optional<Job> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !heap_.empty(); });
    if (closed_) return std::nullopt;
    Job job = std::move(const_cast<Entry&>(heap_.top()).job);
    heap_.pop();
    return job;
  }

  /// Closes the queue: pending and future pop() calls return nullopt,
  /// future try_push() calls return false.  Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  /// Removes and returns every queued job (priority order).  Used on
  /// shutdown to fail still-queued requests explicitly.
  std::vector<Job> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Job> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(std::move(const_cast<Entry&>(heap_.top()).job));
      heap_.pop();
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return heap_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    Job job;
  };
  struct Later {
    // std::priority_queue surfaces the *greatest* element: an entry is
    // "later" (ranked below) when its priority is lower, or equal with a
    // larger admission sequence.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace sani::sched
