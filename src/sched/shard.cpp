#include "sched/shard.h"

#include <algorithm>

#include "util/combinations.h"

namespace sani::sched {

namespace {

void shard_one_size(int n, int k, int workers, const ShardPlanOptions& opts,
                    std::vector<Shard>& out) {
  const std::uint64_t total = binomial(n, k);
  if (total == 0) return;
  std::uint64_t size;
  if (opts.fixed_size > 0) {
    size = opts.fixed_size;
  } else {
    const std::uint64_t target_shards =
        static_cast<std::uint64_t>(workers) *
        static_cast<std::uint64_t>(opts.oversubscribe > 0 ? opts.oversubscribe
                                                          : 1);
    size = (total + target_shards - 1) / target_shards;
    size = std::clamp(size, opts.min_size, opts.max_size);
  }
  if (size == 0) size = 1;
  for (std::uint64_t begin = 0; begin < total; begin += size)
    out.push_back(Shard{k, begin, std::min(begin + size, total)});
}

}  // namespace

std::vector<Shard> plan_shards(int n, int d, int workers, bool largest_first,
                               const ShardPlanOptions& options) {
  std::vector<Shard> out;
  if (workers < 1) workers = 1;
  if (largest_first) {
    for (int k = std::min(d, n); k >= 1; --k)
      shard_one_size(n, k, workers, options, out);
  } else {
    for (int k = 1; k <= d && k <= n; ++k)
      shard_one_size(n, k, workers, options, out);
  }
  return out;
}

}  // namespace sani::sched
