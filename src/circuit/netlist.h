#pragma once
// Gate-level netlist representation.
//
// A Netlist is a flat, single-module, bit-level combinational circuit (with
// optional registers treated as combinational identities that act as glitch
// barriers in the robust probe model).  Wires and gates are unified: wire i
// is the output of node i, and node fan-ins reference lower-numbered wires,
// so the vector order is a topological order by construction.

#include <cstdint>
#include <string>
#include <vector>

namespace sani::circuit {

/// Index of a wire (== index of its driving node).
using WireId = std::uint32_t;

inline constexpr WireId kNoWire = 0xFFFFFFFFu;

enum class GateKind : std::uint8_t {
  kInput,  // primary input (no fan-in)
  kConst0,
  kConst1,
  kBuf,   // 1 fan-in
  kNot,   // 1 fan-in
  kAnd,   // 2 fan-ins
  kOr,
  kXor,
  kXnor,
  kNand,
  kNor,
  kAndNot,  // a & ~b (Yosys $_ANDNOT_)
  kOrNot,   // a | ~b (Yosys $_ORNOT_)
  kMux,     // 3 fan-ins: s ? b : a  (Yosys $_MUX_: A,B,S -> S?B:A)
  kNmux,    // 3 fan-ins: ~(s ? b : a)  (Yosys $_NMUX_)
  kAoi3,    // 3 fan-ins: ~((a & b) | c)  (Yosys $_AOI3_)
  kOai3,    // 3 fan-ins: ~((a | b) & c)  (Yosys $_OAI3_)
  kReg,     // 1 fan-in; identity function, stops glitch propagation
};

/// Number of fan-ins each kind requires.
int gate_arity(GateKind kind);

/// Yosys internal cell name ("$_AND_", ...) for the kind; empty for inputs
/// and constants, which ILANG expresses differently.
const char* gate_cell_name(GateKind kind);

/// One node: a gate driving the wire with the same index.
struct GateNode {
  GateKind kind = GateKind::kInput;
  WireId fanin[3] = {kNoWire, kNoWire, kNoWire};
  std::string name;  // net name, unique within the netlist

  int arity() const { return gate_arity(kind); }
};

/// Aggregate structural statistics (used in reports and benches).
struct NetlistStats {
  std::size_t num_wires = 0;
  std::size_t num_inputs = 0;
  std::size_t num_gates = 0;     // non-input, non-const nodes
  std::size_t num_nonlinear = 0; // and/or/nand/nor/mux family
  std::size_t num_registers = 0;
  int depth = 0;  // longest combinational path in gates
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Appends a node; fan-ins must reference existing wires.  Returns the new
  /// wire id.  Throws std::invalid_argument on arity/ordering violations.
  WireId add(GateKind kind, std::string name, WireId a = kNoWire,
             WireId b = kNoWire, WireId c = kNoWire);

  std::size_t num_wires() const { return nodes_.size(); }
  const GateNode& node(WireId w) const { return nodes_[w]; }

  /// Declared primary outputs (order matters: it is the observable order).
  const std::vector<WireId>& outputs() const { return outputs_; }
  void add_output(WireId w);

  /// All wires of kind kInput, in creation order.
  std::vector<WireId> inputs() const;

  /// True if `w` is a primary output.
  bool is_output(WireId w) const;

  /// Re-checks all structural invariants (used by the parser and tests).
  void validate() const;

  /// Evaluates the whole netlist for one input assignment.
  /// `input_values[i]` is the value of the i-th input (inputs() order).
  /// Returns one bit per wire.  Registers evaluate as identity.
  std::vector<bool> evaluate(const std::vector<bool>& input_values) const;

  NetlistStats stats() const;

  /// Wire lookup by net name; kNoWire if absent.
  WireId find(const std::string& name) const;

 private:
  std::string name_;
  std::vector<GateNode> nodes_;
  std::vector<WireId> outputs_;
};

/// Applies the gate function to concrete bits.
bool eval_gate(GateKind kind, bool a, bool b, bool c);

}  // namespace sani::circuit
