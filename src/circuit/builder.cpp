#include "circuit/builder.h"

namespace sani::circuit {

std::string GadgetBuilder::auto_name(const char* prefix) {
  return std::string(prefix) + "$" + std::to_string(auto_counter_++);
}

WireId GadgetBuilder::gate(GateKind kind, const std::string& name, WireId a,
                           WireId b, WireId c) {
  std::string n = name.empty() ? auto_name(gate_cell_name(kind)) : name;
  return gadget_.netlist.add(kind, std::move(n), a, b, c);
}

std::vector<WireId> GadgetBuilder::secret(const std::string& name,
                                          int num_shares) {
  ShareGroup group;
  group.name = name;
  for (int i = 0; i < num_shares; ++i)
    group.shares.push_back(gadget_.netlist.add(
        GateKind::kInput, name + "[" + std::to_string(i) + "]"));
  gadget_.spec.secrets.push_back(group);
  return group.shares;
}

WireId GadgetBuilder::random(const std::string& name) {
  WireId w = gadget_.netlist.add(GateKind::kInput, name);
  gadget_.spec.randoms.push_back(w);
  return w;
}

std::vector<WireId> GadgetBuilder::randoms(const std::string& name,
                                           int count) {
  std::vector<WireId> ws;
  for (int i = 0; i < count; ++i)
    ws.push_back(random(name + "[" + std::to_string(i) + "]"));
  return ws;
}

WireId GadgetBuilder::public_input(const std::string& name) {
  WireId w = gadget_.netlist.add(GateKind::kInput, name);
  gadget_.spec.publics.push_back(w);
  return w;
}

WireId GadgetBuilder::not_(WireId a, const std::string& name) {
  return gate(GateKind::kNot, name, a);
}
WireId GadgetBuilder::buf(WireId a, const std::string& name) {
  return gate(GateKind::kBuf, name, a);
}
WireId GadgetBuilder::and_(WireId a, WireId b, const std::string& name) {
  return gate(GateKind::kAnd, name, a, b);
}
WireId GadgetBuilder::or_(WireId a, WireId b, const std::string& name) {
  return gate(GateKind::kOr, name, a, b);
}
WireId GadgetBuilder::xor_(WireId a, WireId b, const std::string& name) {
  return gate(GateKind::kXor, name, a, b);
}
WireId GadgetBuilder::xnor_(WireId a, WireId b, const std::string& name) {
  return gate(GateKind::kXnor, name, a, b);
}
WireId GadgetBuilder::nand_(WireId a, WireId b, const std::string& name) {
  return gate(GateKind::kNand, name, a, b);
}
WireId GadgetBuilder::nor_(WireId a, WireId b, const std::string& name) {
  return gate(GateKind::kNor, name, a, b);
}
WireId GadgetBuilder::mux(WireId a, WireId b, WireId sel,
                          const std::string& name) {
  return gate(GateKind::kMux, name, a, b, sel);
}
WireId GadgetBuilder::nmux(WireId a, WireId b, WireId sel,
                           const std::string& name) {
  return gate(GateKind::kNmux, name, a, b, sel);
}
WireId GadgetBuilder::aoi3(WireId a, WireId b, WireId c,
                           const std::string& name) {
  return gate(GateKind::kAoi3, name, a, b, c);
}
WireId GadgetBuilder::oai3(WireId a, WireId b, WireId c,
                           const std::string& name) {
  return gate(GateKind::kOai3, name, a, b, c);
}
WireId GadgetBuilder::reg(WireId a, const std::string& name) {
  return gate(GateKind::kReg, name, a);
}

WireId GadgetBuilder::xor_all(const std::vector<WireId>& ws,
                              const std::string& name) {
  if (ws.empty()) return const0(name);
  WireId acc = ws.front();
  for (std::size_t i = 1; i < ws.size(); ++i) {
    const bool last = i + 1 == ws.size();
    acc = xor_(acc, ws[i], last ? name : "");
  }
  // Single element with an explicit name: insert a named buffer so the
  // caller can find the wire by name.
  if (ws.size() == 1 && !name.empty()) acc = buf(acc, name);
  return acc;
}

WireId GadgetBuilder::const0(const std::string& name) {
  return gate(GateKind::kConst0, name.empty() ? auto_name("const0") : name);
}
WireId GadgetBuilder::const1(const std::string& name) {
  return gate(GateKind::kConst1, name.empty() ? auto_name("const1") : name);
}

void GadgetBuilder::output_group(const std::string& name,
                                 const std::vector<WireId>& ws) {
  ShareGroup group;
  group.name = name;
  group.shares = ws;
  for (WireId w : ws) gadget_.netlist.add_output(w);
  gadget_.spec.outputs.push_back(std::move(group));
}

Gadget GadgetBuilder::build() {
  gadget_.validate();
  return gadget_;
}

}  // namespace sani::circuit
