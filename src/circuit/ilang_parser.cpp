#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "circuit/ilang.h"
#include "obs/trace.h"

namespace sani::circuit {

namespace {

struct ParseError : std::runtime_error {
  explicit ParseError(int line, const std::string& msg)
      : std::runtime_error("ilang:" + std::to_string(line) + ": " + msg) {}
};

// A single-bit signal reference: a (wire,bit) pair or a constant.
struct SigRef {
  enum Kind { kNet, kConst0, kConst1 } kind = kNet;
  std::string wire;
  int bit = 0;

  std::string key() const { return wire + "#" + std::to_string(bit); }
};

struct WireDecl {
  int width = 1;
  int input_port = -1;   // ILANG `input N` slot, -1 if not an input
  int output_port = -1;  // ILANG `output N` slot
  int order = 0;         // declaration order tiebreak
};

struct CellDecl {
  std::string type;
  std::string name;
  std::map<std::string, SigRef> ports;
  int line = 0;
};

enum class Role { kNone, kSecret, kOutput, kRandom, kPublic };

struct Tokenizer {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  int line_no = 0;

  bool done() const { return pos >= tokens.size(); }
  const std::string& peek() const {
    static const std::string empty;
    return done() ? empty : tokens[pos];
  }
  std::string next() {
    if (done()) throw ParseError(line_no, "unexpected end of line");
    return tokens[pos++];
  }
};

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

// Parses `\name`, `\name [i]`, `1'0`, `1'1`, `1'x`.
SigRef parse_sigref(Tokenizer& tz) {
  std::string t = tz.next();
  SigRef ref;
  if (t == "1'0" || t == "1'x") {
    ref.kind = SigRef::kConst0;
    return ref;
  }
  if (t == "1'1") {
    ref.kind = SigRef::kConst1;
    return ref;
  }
  if (t.empty() || t[0] != '\\')
    throw ParseError(tz.line_no, "expected signal reference, got '" + t + "'");
  ref.wire = t.substr(1);
  if (!tz.done() && tz.peek().front() == '[') {
    std::string sel = tz.next();
    if (sel.back() != ']')
      throw ParseError(tz.line_no, "malformed bit select '" + sel + "'");
    ref.bit = std::stoi(sel.substr(1, sel.size() - 2));
  }
  return ref;
}

struct Parser {
  std::map<std::string, WireDecl> wires;
  std::vector<std::string> wire_order;
  std::map<std::string, Role> roles;
  std::vector<std::string> role_order;  // annotation order
  std::vector<CellDecl> cells;
  std::vector<std::pair<SigRef, SigRef>> connects;
  std::string module_name = "top";
  bool saw_module = false;

  void annotate(const std::string& name, Role role, int line) {
    auto [it, fresh] = roles.emplace(name, role);
    if (!fresh && it->second != role)
      throw ParseError(line, "conflicting annotation for '" + name + "'");
    if (fresh) role_order.push_back(name);
  }

  void parse(std::istream& is) {
    std::string line;
    int line_no = 0;
    std::optional<CellDecl> cell;
    while (std::getline(is, line)) {
      ++line_no;
      // `##` lines are annotations; other `#` prefixes are comments.
      auto hash = line.find('#');
      bool annotation = false;
      if (hash != std::string::npos) {
        if (line.compare(hash, 2, "##") == 0)
          annotation = true;
        else
          line = line.substr(0, hash);
      }
      Tokenizer tz{split(line), 0, line_no};
      if (tz.done()) continue;

      if (annotation) {
        tz.next();  // "##"
        std::string what = tz.next();
        Role role;
        if (what == "input") role = Role::kSecret;
        else if (what == "output") role = Role::kOutput;
        else if (what == "random") role = Role::kRandom;
        else if (what == "public") role = Role::kPublic;
        else throw ParseError(line_no, "unknown annotation '" + what + "'");
        while (!tz.done()) {
          std::string t = tz.next();
          if (t.empty() || t[0] != '\\')
            throw ParseError(line_no, "annotation expects \\names");
          annotate(t.substr(1), role, line_no);
        }
        continue;
      }

      std::string kw = tz.next();
      if (kw == "module") {
        if (saw_module) throw ParseError(line_no, "multiple modules");
        saw_module = true;
        std::string t = tz.next();
        module_name = t.size() > 1 && t[0] == '\\' ? t.substr(1) : t;
      } else if (kw == "attribute" || kw == "parameter" || kw == "autoidx") {
        // metadata: ignored
      } else if (kw == "wire") {
        WireDecl d;
        d.order = static_cast<int>(wire_order.size());
        std::string name;
        while (!tz.done()) {
          std::string t = tz.next();
          if (t == "width") d.width = std::stoi(tz.next());
          else if (t == "input") d.input_port = std::stoi(tz.next());
          else if (t == "output") d.output_port = std::stoi(tz.next());
          else if (t == "inout")
            throw ParseError(line_no, "inout ports unsupported");
          else if (t == "upto" || t == "signed") { /* ignored */ }
          else if (t == "offset") tz.next();
          else if (t[0] == '\\') name = t.substr(1);
          else throw ParseError(line_no, "bad wire option '" + t + "'");
        }
        if (name.empty()) throw ParseError(line_no, "wire without name");
        if (!wires.emplace(name, d).second)
          throw ParseError(line_no, "duplicate wire '" + name + "'");
        wire_order.push_back(name);
      } else if (kw == "cell") {
        if (cell) throw ParseError(line_no, "nested cell");
        CellDecl c;
        c.type = tz.next();
        c.name = tz.done() ? c.type + "$" + std::to_string(cells.size())
                           : tz.next();
        if (!c.name.empty() && c.name[0] == '\\') c.name = c.name.substr(1);
        c.line = line_no;
        cell = std::move(c);
      } else if (kw == "connect") {
        SigRef a = parse_sigref(tz);
        if (cell) {
          // Port connection: first ref is the port name.
          if (a.bit != 0)
            throw ParseError(line_no, "bit select on port name");
          SigRef b = parse_sigref(tz);
          cell->ports[a.wire] = b;
        } else {
          SigRef b = parse_sigref(tz);
          connects.emplace_back(a, b);
        }
      } else if (kw == "end") {
        if (cell) {
          cells.push_back(std::move(*cell));
          cell.reset();
        }
        // else: end of module
      } else if (kw == "process" || kw == "memory" || kw == "switch") {
        throw ParseError(line_no, "construct '" + kw + "' unsupported");
      } else {
        throw ParseError(line_no, "unknown keyword '" + kw + "'");
      }
    }
    if (cell) throw ParseError(line_no, "unterminated cell");
  }
};

// Union-find over net keys, with optional constant binding per class.
struct Nets {
  std::map<std::string, std::string> parent;
  std::map<std::string, int> const_value;  // root -> 0/1

  std::string find(const std::string& k) {
    auto it = parent.find(k);
    if (it == parent.end()) {
      parent.emplace(k, k);
      return k;
    }
    if (it->second == k) return k;
    std::string root = find(it->second);
    parent[k] = root;
    return root;
  }

  void unite(const std::string& a, const std::string& b) {
    std::string ra = find(a), rb = find(b);
    if (ra == rb) return;
    // Merge constant bindings.
    auto ca = const_value.find(ra);
    auto cb = const_value.find(rb);
    if (ca != const_value.end() && cb != const_value.end() &&
        ca->second != cb->second)
      throw std::runtime_error("ilang: net tied to both constants");
    int cv = ca != const_value.end() ? ca->second
             : cb != const_value.end() ? cb->second
                                       : -1;
    parent[ra] = rb;
    const_value.erase(ra);
    if (cv >= 0) const_value[rb] = cv;
  }

  void tie_const(const std::string& k, int v) {
    std::string r = find(k);
    auto it = const_value.find(r);
    if (it != const_value.end() && it->second != v)
      throw std::runtime_error("ilang: net tied to both constants");
    const_value[r] = v;
  }
};

GateKind cell_kind(const std::string& type, int line) {
  if (type == "$_BUF_") return GateKind::kBuf;
  if (type == "$_NOT_") return GateKind::kNot;
  if (type == "$_AND_") return GateKind::kAnd;
  if (type == "$_OR_") return GateKind::kOr;
  if (type == "$_XOR_") return GateKind::kXor;
  if (type == "$_XNOR_") return GateKind::kXnor;
  if (type == "$_NAND_") return GateKind::kNand;
  if (type == "$_NOR_") return GateKind::kNor;
  if (type == "$_ANDNOT_") return GateKind::kAndNot;
  if (type == "$_ORNOT_") return GateKind::kOrNot;
  if (type == "$_MUX_") return GateKind::kMux;
  if (type == "$_NMUX_") return GateKind::kNmux;
  if (type == "$_AOI3_") return GateKind::kAoi3;
  if (type == "$_OAI3_") return GateKind::kOai3;
  if (type == "$_DFF_P_" || type == "$_DFF_N_") return GateKind::kReg;
  throw ParseError(line, "unsupported cell type '" + type + "'");
}

}  // namespace

Gadget parse_ilang(std::istream& is) {
  obs::Span span("parse");
  Parser p;
  p.parse(is);

  Nets nets;
  auto ref_key = [&](const SigRef& r) -> std::string {
    if (r.kind == SigRef::kNet) {
      auto it = p.wires.find(r.wire);
      if (it == p.wires.end())
        throw std::runtime_error("ilang: reference to undeclared wire '" +
                                 r.wire + "'");
      if (r.bit < 0 || r.bit >= it->second.width)
        throw std::runtime_error("ilang: bit select out of range on '" +
                                 r.wire + "'");
      return r.key();
    }
    return "";
  };

  // Register aliases and constants from top-level connects.
  for (const auto& [a, b] : p.connects) {
    std::string ka = ref_key(a);
    std::string kb = ref_key(b);
    if (!ka.empty() && !kb.empty())
      nets.unite(ka, kb);
    else if (!ka.empty())
      nets.tie_const(ka, b.kind == SigRef::kConst1 ? 1 : 0);
    else if (!kb.empty())
      nets.tie_const(kb, a.kind == SigRef::kConst1 ? 1 : 0);
  }
  // Touch every declared bit so isolated nets exist.
  for (const auto& name : p.wire_order) {
    const WireDecl& d = p.wires.at(name);
    for (int b = 0; b < d.width; ++b)
      nets.find(name + "#" + std::to_string(b));
  }

  Netlist nl(p.module_name);

  // root net -> netlist wire (once driven).
  std::map<std::string, WireId> driven;

  // Inputs first, ordered by (port, bit).
  std::vector<std::pair<std::pair<int, int>, std::string>> input_wires;
  for (const auto& name : p.wire_order) {
    const WireDecl& d = p.wires.at(name);
    if (d.input_port >= 0)
      input_wires.push_back({{d.input_port, d.order}, name});
  }
  std::sort(input_wires.begin(), input_wires.end());

  SecuritySpec spec;
  for (const auto& [key, name] : input_wires) {
    const WireDecl& d = p.wires.at(name);
    Role role = Role::kNone;
    if (auto it = p.roles.find(name); it != p.roles.end()) role = it->second;
    ShareGroup group;
    group.name = name;
    for (int b = 0; b < d.width; ++b) {
      std::string wname =
          d.width == 1 ? name : name + "[" + std::to_string(b) + "]";
      WireId w = nl.add(GateKind::kInput, wname);
      std::string root = nets.find(name + "#" + std::to_string(b));
      if (driven.count(root))
        throw std::runtime_error("ilang: input net driven twice: " + name);
      driven[root] = w;
      switch (role) {
        case Role::kSecret: group.shares.push_back(w); break;
        case Role::kRandom: spec.randoms.push_back(w); break;
        case Role::kPublic:
        case Role::kNone: spec.publics.push_back(w); break;
        case Role::kOutput:
          throw std::runtime_error("ilang: '## output' on an input wire: " +
                                   name);
      }
    }
    if (role == Role::kSecret) spec.secrets.push_back(std::move(group));
  }

  // Constants used anywhere become dedicated nodes on demand.
  WireId const_wire[2] = {kNoWire, kNoWire};
  auto const_node = [&](int v) {
    if (const_wire[v] == kNoWire)
      const_wire[v] = nl.add(v ? GateKind::kConst1 : GateKind::kConst0,
                             v ? "$const1" : "$const0");
    return const_wire[v];
  };

  // Resolve a cell input ref to a netlist wire if available.
  auto resolve = [&](const SigRef& r) -> WireId {
    if (r.kind == SigRef::kConst0) return const_node(0);
    if (r.kind == SigRef::kConst1) return const_node(1);
    std::string root = nets.find(ref_key(r));
    if (auto it = nets.const_value.find(root); it != nets.const_value.end())
      return const_node(it->second);
    if (auto it = driven.find(root); it != driven.end()) return it->second;
    return kNoWire;
  };

  // Topological emission of cells (arbitrary declaration order supported).
  std::vector<bool> emitted(p.cells.size(), false);
  std::size_t remaining = p.cells.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < p.cells.size(); ++i) {
      if (emitted[i]) continue;
      const CellDecl& c = p.cells[i];
      GateKind kind = cell_kind(c.type, c.line);
      const bool is_reg = kind == GateKind::kReg;
      const char* out_port = is_reg ? "Q" : "Y";
      std::vector<std::string> in_ports;
      if (is_reg) in_ports = {"D"};
      else if (kind == GateKind::kMux || kind == GateKind::kNmux)
        in_ports = {"A", "B", "S"};
      else if (kind == GateKind::kAoi3 || kind == GateKind::kOai3)
        in_ports = {"A", "B", "C"};
      else if (gate_arity(kind) == 1) in_ports = {"A"};
      else in_ports = {"A", "B"};

      WireId fanin[3] = {kNoWire, kNoWire, kNoWire};
      bool ready = true;
      for (std::size_t j = 0; j < in_ports.size(); ++j) {
        auto it = c.ports.find(in_ports[j]);
        if (it == c.ports.end())
          throw ParseError(c.line, "cell missing port " + in_ports[j]);
        fanin[j] = resolve(it->second);
        if (fanin[j] == kNoWire) ready = false;
      }
      if (!ready) continue;

      auto out_it = c.ports.find(out_port);
      if (out_it == c.ports.end())
        throw ParseError(c.line, std::string("cell missing port ") + out_port);
      WireId w = nl.add(kind, c.name, fanin[0], fanin[1], fanin[2]);
      std::string root = nets.find(ref_key(out_it->second));
      if (driven.count(root))
        throw ParseError(c.line, "net driven twice by cell " + c.name);
      driven[root] = w;
      emitted[i] = true;
      --remaining;
      progress = true;
    }
    if (!progress)
      throw std::runtime_error(
          "ilang: combinational cycle or undriven cell input");
  }

  // Output groups, ordered by (port, declaration).
  std::vector<std::pair<std::pair<int, int>, std::string>> output_wires;
  for (const auto& name : p.wire_order) {
    const WireDecl& d = p.wires.at(name);
    if (d.output_port >= 0)
      output_wires.push_back({{d.output_port, d.order}, name});
  }
  std::sort(output_wires.begin(), output_wires.end());
  for (const auto& [key, name] : output_wires) {
    const WireDecl& d = p.wires.at(name);
    ShareGroup group;
    group.name = name;
    for (int b = 0; b < d.width; ++b) {
      std::string root = nets.find(name + "#" + std::to_string(b));
      WireId w;
      if (auto it = driven.find(root); it != driven.end()) {
        w = it->second;
      } else if (auto cit = nets.const_value.find(root);
                 cit != nets.const_value.end()) {
        w = const_node(cit->second);
      } else {
        throw std::runtime_error("ilang: undriven output bit of '" + name +
                                 "'");
      }
      nl.add_output(w);
      group.shares.push_back(w);
    }
    Role role = Role::kNone;
    if (auto it = p.roles.find(name); it != p.roles.end()) role = it->second;
    if (role == Role::kOutput) spec.outputs.push_back(std::move(group));
  }

  Gadget g{std::move(nl), std::move(spec)};
  g.validate();
  return g;
}

Gadget parse_ilang_string(const std::string& text) {
  std::istringstream is(text);
  return parse_ilang(is);
}

Gadget parse_ilang_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("ilang: cannot open " + path);
  return parse_ilang(is);
}

}  // namespace sani::circuit
