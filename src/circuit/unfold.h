#pragma once
// Circuit unfolding (Sec. III-A of the paper).
//
// "Unfolding" derives the Boolean expression of every wire in the circuit as
// a BDD over the primary inputs.  All wires share one dd::Manager, so common
// subexpressions (factors/co-factors across probes) are stored once — this
// sharing is the reason the paper builds all probe functions in a single
// CUDD manager.
//
// The VarMap fixes the correspondence between decision-diagram variables and
// circuit inputs.  Spectral coordinates inherit the same indices: the
// alpha-bit of input variable v is dd variable v of a spectrum ADD.

#include <memory>
#include <vector>

#include "circuit/spec.h"
#include "dd/bdd.h"
#include "dd/manager.h"
#include "util/mask.h"

namespace sani::circuit {

/// Mapping between primary-input wires and decision-diagram variables.
struct VarMap {
  std::vector<int> wire_to_var;   // -1 for non-input wires
  std::vector<WireId> var_to_wire;

  Mask random_vars;   // rho coordinates
  Mask public_vars;
  Mask share_vars;    // union over all secrets

  /// Per secret group: the mask of its share variables.
  std::vector<Mask> secret_vars;
  /// secret_share_var[i][j] = dd variable of share j of secret i.
  std::vector<std::vector<int>> secret_share_var;

  int num_vars = 0;

  int var_of(WireId w) const { return wire_to_var[w]; }
};

/// Variable-order strategies for the unfolding.  "The choice of the
/// variable order can have a dramatic impact on the size of the BDD"
/// (Sec. II-C of the paper); bench_ordering quantifies the impact on this
/// workload.  Verdicts are order-invariant (asserted by tests).
enum class VarOrder {
  kDeclared,      // input wire order, as declared (default)
  kRandomsFirst,  // randoms, then share groups, then publics
  kRandomsLast,   // share groups, then randoms, then publics
  kInterleaved,   // share index-major: a0 b0 ... a1 b1 ..., randoms, publics
};

/// Assigns dd variables to the gadget's inputs under the given strategy.
VarMap make_var_map(const Gadget& gadget, VarOrder order = VarOrder::kDeclared);

/// The unfolded circuit: one BDD per wire, plus the variable mapping and the
/// manager that owns the nodes.
struct Unfolded {
  std::unique_ptr<dd::Manager> manager;
  VarMap vars;
  std::vector<dd::Bdd> wire_fn;  // indexed by WireId
};

/// Builds the BDD of every wire.  `cache_bits` sizes the manager's computed
/// table (grow for very large gadgets).
Unfolded unfold(const Gadget& gadget, int cache_bits = 18,
                VarOrder order = VarOrder::kDeclared);

/// Total distinct diagram nodes across all wire functions (an unfolding
/// size measure for the ordering ablation).
std::size_t unfolding_size(const Unfolded& unfolded);

}  // namespace sani::circuit
