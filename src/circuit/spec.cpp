#include "circuit/spec.h"

#include <set>
#include <stdexcept>

namespace sani::circuit {

int SecuritySpec::shares_per_secret() const {
  if (secrets.empty())
    throw std::runtime_error("SecuritySpec: no sensitive inputs declared");
  const std::size_t d = secrets.front().shares.size();
  for (const auto& g : secrets)
    if (g.shares.size() != d)
      throw std::runtime_error(
          "SecuritySpec: secrets have differing share counts");
  return static_cast<int>(d);
}

std::size_t SecuritySpec::num_output_shares() const {
  std::size_t n = 0;
  for (const auto& g : outputs) n += g.shares.size();
  return n;
}

void Gadget::validate() const {
  netlist.validate();
  std::set<WireId> seen;
  auto check_input = [&](WireId w, const char* role) {
    if (w >= netlist.num_wires())
      throw std::runtime_error(std::string("Gadget: unknown ") + role +
                               " wire");
    if (netlist.node(w).kind != GateKind::kInput)
      throw std::runtime_error(std::string("Gadget: ") + role +
                               " wire is not a primary input: " +
                               netlist.node(w).name);
    if (!seen.insert(w).second)
      throw std::runtime_error("Gadget: wire annotated twice: " +
                               netlist.node(w).name);
  };
  for (const auto& g : spec.secrets)
    for (WireId w : g.shares) check_input(w, "share");
  for (WireId w : spec.randoms) check_input(w, "random");
  for (WireId w : spec.publics) check_input(w, "public");
  for (const auto& g : spec.outputs)
    for (WireId w : g.shares) {
      if (w >= netlist.num_wires())
        throw std::runtime_error("Gadget: unknown output share wire");
      if (!netlist.is_output(w))
        throw std::runtime_error(
            "Gadget: output share is not a netlist output: " +
            netlist.node(w).name);
    }
  spec.shares_per_secret();  // consistency check
}

}  // namespace sani::circuit
