#include "circuit/unfold.h"

#include "obs/trace.h"

#include <set>
#include <stdexcept>
#include <vector>

namespace sani::circuit {

namespace {

// The input wires in the order their dd variables should be assigned.
std::vector<WireId> ordered_inputs(const Gadget& gadget, VarOrder order) {
  const Netlist& nl = gadget.netlist;
  if (order == VarOrder::kDeclared) return nl.inputs();

  std::vector<WireId> randoms(gadget.spec.randoms);
  std::vector<WireId> publics(gadget.spec.publics);
  std::vector<WireId> shares;
  if (order == VarOrder::kInterleaved) {
    // Share index-major: share j of every secret before share j+1 of any.
    const std::size_t per_secret = gadget.spec.secrets.empty()
                                       ? 0
                                       : gadget.spec.secrets[0].shares.size();
    for (std::size_t j = 0; j < per_secret; ++j)
      for (const auto& g : gadget.spec.secrets) shares.push_back(g.shares[j]);
  } else {
    for (const auto& g : gadget.spec.secrets)
      shares.insert(shares.end(), g.shares.begin(), g.shares.end());
  }

  std::vector<WireId> result;
  if (order == VarOrder::kRandomsFirst)
    result.insert(result.end(), randoms.begin(), randoms.end());
  result.insert(result.end(), shares.begin(), shares.end());
  if (order != VarOrder::kRandomsFirst)
    result.insert(result.end(), randoms.begin(), randoms.end());
  result.insert(result.end(), publics.begin(), publics.end());
  return result;
}

}  // namespace

VarMap make_var_map(const Gadget& gadget, VarOrder order) {
  const Netlist& nl = gadget.netlist;
  VarMap vm;
  vm.wire_to_var.assign(nl.num_wires(), -1);
  for (WireId w : ordered_inputs(gadget, order)) {
    vm.wire_to_var[w] = vm.num_vars++;
    vm.var_to_wire.push_back(w);
  }
  if (vm.num_vars != static_cast<int>(nl.inputs().size()))
    throw std::runtime_error("unfold: ordering missed an input wire");
  if (vm.num_vars > Mask::kMaxBits)
    throw std::runtime_error("unfold: more than 128 primary inputs");

  vm.secret_vars.reserve(gadget.spec.secrets.size());
  for (const auto& g : gadget.spec.secrets) {
    Mask m;
    std::vector<int> vars;
    for (WireId w : g.shares) {
      const int v = vm.wire_to_var[w];
      m.set(v);
      vars.push_back(v);
    }
    vm.share_vars |= m;
    vm.secret_vars.push_back(m);
    vm.secret_share_var.push_back(std::move(vars));
  }
  for (WireId w : gadget.spec.randoms) vm.random_vars.set(vm.wire_to_var[w]);
  for (WireId w : gadget.spec.publics) vm.public_vars.set(vm.wire_to_var[w]);
  return vm;
}

std::size_t unfolding_size(const Unfolded& unfolded) {
  // Count distinct nodes across all wire diagrams by marking via a set of
  // visited roots through dag traversal on the shared manager.
  std::set<dd::NodeId> seen;
  std::vector<dd::NodeId> stack;
  for (const auto& f : unfolded.wire_fn) stack.push_back(f.node());
  std::size_t count = 0;
  dd::Manager& m = *unfolded.manager;
  while (!stack.empty()) {
    dd::NodeId n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    ++count;
    if (!m.is_terminal(n)) {
      stack.push_back(m.node_lo(n));
      stack.push_back(m.node_hi(n));
    }
  }
  return count;
}

Unfolded unfold(const Gadget& gadget, int cache_bits, VarOrder order) {
  obs::Span span("unfold");
  Unfolded u;
  u.vars = make_var_map(gadget, order);
  u.manager = std::make_unique<dd::Manager>(u.vars.num_vars, cache_bits);
  dd::Manager& m = *u.manager;

  const Netlist& nl = gadget.netlist;
  u.wire_fn.reserve(nl.num_wires());
  for (WireId w = 0; w < nl.num_wires(); ++w) {
    const GateNode& n = nl.node(w);
    auto in = [&](int i) -> const dd::Bdd& { return u.wire_fn[n.fanin[i]]; };
    dd::Bdd f;
    switch (n.kind) {
      case GateKind::kInput:
        f = dd::Bdd::var(m, u.vars.wire_to_var[w]);
        break;
      case GateKind::kConst0:
        f = dd::Bdd::zero(m);
        break;
      case GateKind::kConst1:
        f = dd::Bdd::one(m);
        break;
      case GateKind::kBuf:
      case GateKind::kReg:
        f = in(0);
        break;
      case GateKind::kNot:
        f = !in(0);
        break;
      case GateKind::kAnd:
        f = in(0) & in(1);
        break;
      case GateKind::kOr:
        f = in(0) | in(1);
        break;
      case GateKind::kXor:
        f = in(0) ^ in(1);
        break;
      case GateKind::kXnor:
        f = !(in(0) ^ in(1));
        break;
      case GateKind::kNand:
        f = !(in(0) & in(1));
        break;
      case GateKind::kNor:
        f = !(in(0) | in(1));
        break;
      case GateKind::kAndNot:
        f = in(0) & !in(1);
        break;
      case GateKind::kOrNot:
        f = in(0) | !in(1);
        break;
      case GateKind::kMux:
        f = in(2).ite(in(1), in(0));  // S ? B : A
        break;
      case GateKind::kNmux:
        f = !in(2).ite(in(1), in(0));
        break;
      case GateKind::kAoi3:
        f = !((in(0) & in(1)) | in(2));
        break;
      case GateKind::kOai3:
        f = !((in(0) | in(1)) & in(2));
        break;
    }
    u.wire_fn.push_back(std::move(f));
  }
  m.sample_counters();
  return u;
}

}  // namespace sani::circuit
