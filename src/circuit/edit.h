#pragma once
// Function-preserving structural edits.
//
// The incremental re-verification tests and bench_incremental need
// "resubmission after a small edit" workloads whose *verdict* is provably
// unchanged, so that a byte-identical report is the correct expectation.
// These helpers produce such edits: renaming every net (changes the
// canonical ILANG, hence the artifact key, but no cone digest) and swapping
// the fan-ins of one commutative gate (changes exactly the digests of the
// cones containing that gate, but not any wire's Boolean function).

#include <string>

#include "circuit/spec.h"

namespace sani::circuit {

/// Copy of `gadget` with every net name prefixed by `prefix`; gate
/// structure, outputs and annotations are untouched (WireIds are preserved,
/// so the spec carries over verbatim).
Gadget with_renamed_wires(const Gadget& gadget, const std::string& prefix);

/// Copy of `gadget` with the first two fan-ins of wire `w` swapped.  Throws
/// std::invalid_argument unless the gate is commutative in those operands
/// (AND/OR/XOR/XNOR/NAND/NOR), so the edit is guaranteed function-
/// preserving while every cone containing `w` changes structurally.
Gadget with_swapped_fanins(const Gadget& gadget, WireId w);

/// First wire (topological order) whose gate with_swapped_fanins accepts
/// and whose two fan-ins are distinct; kNoWire if the gadget has none.
WireId first_swappable_gate(const Gadget& gadget);

}  // namespace sani::circuit
