#include "circuit/instantiate.h"

#include <stdexcept>

namespace sani::circuit {

Instantiated instantiate(GadgetBuilder& builder, const Gadget& gadget,
                         const std::vector<std::vector<WireId>>& secret_inputs,
                         const std::string& prefix) {
  const Netlist& nl = gadget.netlist;
  if (secret_inputs.size() != gadget.spec.secrets.size())
    throw std::invalid_argument("instantiate: secret group count mismatch");

  // Wire map: instantiated gadget's wire id -> host wire id.
  std::vector<WireId> map(nl.num_wires(), kNoWire);

  for (std::size_t i = 0; i < secret_inputs.size(); ++i) {
    const auto& group = gadget.spec.secrets[i];
    if (secret_inputs[i].size() != group.shares.size())
      throw std::invalid_argument("instantiate: share count mismatch for '" +
                                  group.name + "'");
    for (std::size_t j = 0; j < group.shares.size(); ++j)
      map[group.shares[j]] = secret_inputs[i][j];
  }

  Instantiated result;
  int random_counter = 0;
  for (WireId w : gadget.spec.randoms) {
    WireId fresh =
        builder.random(prefix + "r[" + std::to_string(random_counter++) + "]");
    map[w] = fresh;
    result.randoms.push_back(fresh);
  }
  int public_counter = 0;
  for (WireId w : gadget.spec.publics)
    map[w] = builder.public_input(prefix + "pub[" +
                                  std::to_string(public_counter++) + "]");

  // Replay gates in topological (= id) order.
  for (WireId w = 0; w < nl.num_wires(); ++w) {
    const GateNode& n = nl.node(w);
    if (n.kind == GateKind::kInput) {
      if (map[w] == kNoWire)
        throw std::invalid_argument(
            "instantiate: unbound input wire '" + n.name + "'");
      continue;
    }
    auto in = [&](int i) { return map[n.fanin[i]]; };
    WireId host = kNoWire;
    const std::string name = prefix + n.name;
    switch (n.kind) {
      case GateKind::kConst0: host = builder.const0(name); break;
      case GateKind::kConst1: host = builder.const1(name); break;
      case GateKind::kBuf: host = builder.buf(in(0), name); break;
      case GateKind::kNot: host = builder.not_(in(0), name); break;
      case GateKind::kReg: host = builder.reg(in(0), name); break;
      case GateKind::kAnd: host = builder.and_(in(0), in(1), name); break;
      case GateKind::kOr: host = builder.or_(in(0), in(1), name); break;
      case GateKind::kXor: host = builder.xor_(in(0), in(1), name); break;
      case GateKind::kXnor: host = builder.xnor_(in(0), in(1), name); break;
      case GateKind::kNand: host = builder.nand_(in(0), in(1), name); break;
      case GateKind::kNor: host = builder.nor_(in(0), in(1), name); break;
      case GateKind::kAndNot:
      case GateKind::kOrNot: {
        // Host builder has no direct and-not/or-not helpers; expand.
        WireId nb = builder.not_(in(1));
        host = n.kind == GateKind::kAndNot ? builder.and_(in(0), nb, name)
                                           : builder.or_(in(0), nb, name);
        break;
      }
      case GateKind::kMux:
        host = builder.mux(in(0), in(1), in(2), name);
        break;
      case GateKind::kNmux:
        host = builder.nmux(in(0), in(1), in(2), name);
        break;
      case GateKind::kAoi3:
        host = builder.aoi3(in(0), in(1), in(2), name);
        break;
      case GateKind::kOai3:
        host = builder.oai3(in(0), in(1), in(2), name);
        break;
      case GateKind::kInput:
        break;  // handled above
    }
    map[w] = host;
  }

  for (const auto& group : gadget.spec.outputs) {
    std::vector<WireId> out;
    for (WireId w : group.shares) out.push_back(map[w]);
    result.outputs.push_back(std::move(out));
  }
  return result;
}

}  // namespace sani::circuit
