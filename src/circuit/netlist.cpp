#include "circuit/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace sani::circuit {

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kReg:
      return 1;
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kXor:
    case GateKind::kXnor:
    case GateKind::kNand:
    case GateKind::kNor:
    case GateKind::kAndNot:
    case GateKind::kOrNot:
      return 2;
    case GateKind::kMux:
    case GateKind::kNmux:
    case GateKind::kAoi3:
    case GateKind::kOai3:
      return 3;
  }
  return 0;
}

const char* gate_cell_name(GateKind kind) {
  switch (kind) {
    case GateKind::kBuf: return "$_BUF_";
    case GateKind::kNot: return "$_NOT_";
    case GateKind::kAnd: return "$_AND_";
    case GateKind::kOr: return "$_OR_";
    case GateKind::kXor: return "$_XOR_";
    case GateKind::kXnor: return "$_XNOR_";
    case GateKind::kNand: return "$_NAND_";
    case GateKind::kNor: return "$_NOR_";
    case GateKind::kAndNot: return "$_ANDNOT_";
    case GateKind::kOrNot: return "$_ORNOT_";
    case GateKind::kMux: return "$_MUX_";
    case GateKind::kNmux: return "$_NMUX_";
    case GateKind::kAoi3: return "$_AOI3_";
    case GateKind::kOai3: return "$_OAI3_";
    case GateKind::kReg: return "$_DFF_P_";
    default: return "";
  }
}

bool eval_gate(GateKind kind, bool a, bool b, bool c) {
  switch (kind) {
    case GateKind::kInput: return a;  // caller supplies
    case GateKind::kConst0: return false;
    case GateKind::kConst1: return true;
    case GateKind::kBuf: return a;
    case GateKind::kNot: return !a;
    case GateKind::kAnd: return a && b;
    case GateKind::kOr: return a || b;
    case GateKind::kXor: return a != b;
    case GateKind::kXnor: return a == b;
    case GateKind::kNand: return !(a && b);
    case GateKind::kNor: return !(a || b);
    case GateKind::kAndNot: return a && !b;
    case GateKind::kOrNot: return a || !b;
    case GateKind::kMux: return c ? b : a;  // $_MUX_: S ? B : A
    case GateKind::kNmux: return !(c ? b : a);
    case GateKind::kAoi3: return !((a && b) || c);
    case GateKind::kOai3: return !((a || b) && c);
    case GateKind::kReg: return a;
  }
  return false;
}

WireId Netlist::add(GateKind kind, std::string name, WireId a, WireId b,
                    WireId c) {
  const int arity = gate_arity(kind);
  const WireId id = static_cast<WireId>(nodes_.size());
  const WireId fanin[3] = {a, b, c};
  for (int i = 0; i < 3; ++i) {
    if (i < arity) {
      if (fanin[i] == kNoWire || fanin[i] >= id)
        throw std::invalid_argument("Netlist::add: bad fan-in for '" + name +
                                    "'");
    } else if (fanin[i] != kNoWire) {
      throw std::invalid_argument("Netlist::add: too many fan-ins for '" +
                                  name + "'");
    }
  }
  GateNode node;
  node.kind = kind;
  node.fanin[0] = a;
  node.fanin[1] = b;
  node.fanin[2] = c;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  return id;
}

void Netlist::add_output(WireId w) {
  if (w >= nodes_.size())
    throw std::invalid_argument("Netlist::add_output: unknown wire");
  outputs_.push_back(w);
}

std::vector<WireId> Netlist::inputs() const {
  std::vector<WireId> result;
  for (WireId w = 0; w < nodes_.size(); ++w)
    if (nodes_[w].kind == GateKind::kInput) result.push_back(w);
  return result;
}

bool Netlist::is_output(WireId w) const {
  return std::find(outputs_.begin(), outputs_.end(), w) != outputs_.end();
}

void Netlist::validate() const {
  for (WireId w = 0; w < nodes_.size(); ++w) {
    const GateNode& n = nodes_[w];
    const int arity = n.arity();
    for (int i = 0; i < arity; ++i)
      if (n.fanin[i] == kNoWire || n.fanin[i] >= w)
        throw std::runtime_error("Netlist: non-topological fan-in at wire " +
                                 std::to_string(w));
  }
  for (WireId w : outputs_)
    if (w >= nodes_.size())
      throw std::runtime_error("Netlist: dangling output");
}

std::vector<bool> Netlist::evaluate(
    const std::vector<bool>& input_values) const {
  std::vector<bool> value(nodes_.size(), false);
  std::size_t next_input = 0;
  for (WireId w = 0; w < nodes_.size(); ++w) {
    const GateNode& n = nodes_[w];
    if (n.kind == GateKind::kInput) {
      if (next_input >= input_values.size())
        throw std::invalid_argument("Netlist::evaluate: too few inputs");
      value[w] = input_values[next_input++];
      continue;
    }
    const bool a = n.arity() > 0 ? value[n.fanin[0]] : false;
    const bool b = n.arity() > 1 ? value[n.fanin[1]] : false;
    const bool c = n.arity() > 2 ? value[n.fanin[2]] : false;
    value[w] = eval_gate(n.kind, a, b, c);
  }
  if (next_input != input_values.size())
    throw std::invalid_argument("Netlist::evaluate: too many inputs");
  return value;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_wires = nodes_.size();
  std::vector<int> depth(nodes_.size(), 0);
  for (WireId w = 0; w < nodes_.size(); ++w) {
    const GateNode& n = nodes_[w];
    switch (n.kind) {
      case GateKind::kInput:
        ++s.num_inputs;
        break;
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
      default:
        ++s.num_gates;
        if (n.kind == GateKind::kReg) ++s.num_registers;
        if (n.kind == GateKind::kAnd || n.kind == GateKind::kOr ||
            n.kind == GateKind::kNand || n.kind == GateKind::kNor ||
            n.kind == GateKind::kAndNot || n.kind == GateKind::kOrNot ||
            n.kind == GateKind::kMux || n.kind == GateKind::kNmux ||
            n.kind == GateKind::kAoi3 || n.kind == GateKind::kOai3)
          ++s.num_nonlinear;
        break;
    }
    int d = 0;
    for (int i = 0; i < n.arity(); ++i)
      d = std::max(d, depth[n.fanin[i]]);
    if (n.kind != GateKind::kInput && n.kind != GateKind::kConst0 &&
        n.kind != GateKind::kConst1)
      d += 1;
    depth[w] = d;
    s.depth = std::max(s.depth, d);
  }
  return s;
}

WireId Netlist::find(const std::string& name) const {
  for (WireId w = 0; w < nodes_.size(); ++w)
    if (nodes_[w].name == name) return w;
  return kNoWire;
}

}  // namespace sani::circuit
