#pragma once
// Security annotations: which wires are shares / randoms / outputs.
//
// This is the structured form of the maskVerif-compliant `##` annotations of
// Sec. III-A (Fig. 4): every sensitive input is a group of share wires whose
// XOR is the secret; `## random` wires are uniform fresh randomness;
// `## public` wires carry non-sensitive values (clock/reset — excluded from
// the spectral analysis); `## output` groups are the shared outputs.

#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace sani::circuit {

/// A named group of share wires (the XOR of the group is the secret value).
struct ShareGroup {
  std::string name;
  std::vector<WireId> shares;
};

struct SecuritySpec {
  std::vector<ShareGroup> secrets;   // input share groups
  std::vector<ShareGroup> outputs;   // output share groups
  std::vector<WireId> randoms;
  std::vector<WireId> publics;

  /// Number of shares per secret (d+1 for order-d masking).  Throws if the
  /// groups disagree or there are no secrets.
  int shares_per_secret() const;

  /// Total count of output share wires.
  std::size_t num_output_shares() const;
};

/// A netlist together with its security annotations — the unit the
/// verification engines operate on.
struct Gadget {
  Netlist netlist;
  SecuritySpec spec;

  /// Structural sanity: every annotated wire exists, share wires are
  /// inputs, output shares are netlist outputs, no wire annotated twice.
  void validate() const;
};

}  // namespace sani::circuit
