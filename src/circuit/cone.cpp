#include "circuit/cone.h"

#include <algorithm>

namespace sani::circuit {

namespace {

std::vector<WireId> merge_sorted(const std::vector<WireId>& a,
                                 const std::vector<WireId>& b) {
  std::vector<WireId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<std::vector<WireId>> glitch_cones(const Netlist& netlist) {
  std::vector<std::vector<WireId>> cone(netlist.num_wires());
  for (WireId w = 0; w < netlist.num_wires(); ++w) {
    const GateNode& n = netlist.node(w);
    switch (n.kind) {
      case GateKind::kInput:
      case GateKind::kReg:
        cone[w] = {w};
        break;
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
      default: {
        std::vector<WireId> acc;
        for (int i = 0; i < n.arity(); ++i)
          acc = merge_sorted(acc, cone[n.fanin[i]]);
        cone[w] = std::move(acc);
        break;
      }
    }
  }
  return cone;
}

}  // namespace sani::circuit
