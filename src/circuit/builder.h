#pragma once
// Fluent construction of annotated gadgets.
//
// The gadget generators (src/gadgets/) assemble their circuits through this
// builder, which keeps the netlist and the security annotations consistent
// and auto-names intermediate wires.

#include <string>
#include <vector>

#include "circuit/spec.h"

namespace sani::circuit {

class GadgetBuilder {
 public:
  explicit GadgetBuilder(std::string module_name)
      : gadget_{Netlist(std::move(module_name)), {}} {}

  /// Declares a secret input with `num_shares` shares named
  /// "<name>[0..num_shares-1]".  Returns the share wires.
  std::vector<WireId> secret(const std::string& name, int num_shares);

  /// Declares one fresh-random input wire.
  WireId random(const std::string& name);
  /// Declares `count` randoms "<name>[0..count-1]".
  std::vector<WireId> randoms(const std::string& name, int count);

  /// Declares a public (non-sensitive) input.
  WireId public_input(const std::string& name);

  // Gate constructors; empty name -> auto-generated.
  WireId not_(WireId a, const std::string& name = "");
  WireId buf(WireId a, const std::string& name = "");
  WireId and_(WireId a, WireId b, const std::string& name = "");
  WireId or_(WireId a, WireId b, const std::string& name = "");
  WireId xor_(WireId a, WireId b, const std::string& name = "");
  WireId xnor_(WireId a, WireId b, const std::string& name = "");
  WireId nand_(WireId a, WireId b, const std::string& name = "");
  WireId nor_(WireId a, WireId b, const std::string& name = "");
  WireId mux(WireId a, WireId b, WireId sel, const std::string& name = "");
  WireId nmux(WireId a, WireId b, WireId sel, const std::string& name = "");
  /// AOI3: NOT((a AND b) OR c).
  WireId aoi3(WireId a, WireId b, WireId c, const std::string& name = "");
  /// OAI3: NOT((a OR b) AND c).
  WireId oai3(WireId a, WireId b, WireId c, const std::string& name = "");
  /// Register (identity function; glitch barrier in the robust model).
  WireId reg(WireId a, const std::string& name = "");

  /// XOR-reduction of a wire list (returns Const0 wire for empty input).
  WireId xor_all(const std::vector<WireId>& ws, const std::string& name = "");

  WireId const0(const std::string& name = "");
  WireId const1(const std::string& name = "");

  /// Declares an output share group "<name>[i]" and marks the wires as
  /// netlist outputs.
  void output_group(const std::string& name, const std::vector<WireId>& ws);

  /// Finalizes (validates) and returns the gadget.
  Gadget build();

  const Netlist& netlist() const { return gadget_.netlist; }

 private:
  WireId gate(GateKind kind, const std::string& name, WireId a = kNoWire,
              WireId b = kNoWire, WireId c = kNoWire);
  std::string auto_name(const char* prefix);

  Gadget gadget_;
  int auto_counter_ = 0;
};

}  // namespace sani::circuit
