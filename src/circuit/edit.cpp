#include "circuit/edit.h"

#include <stdexcept>

namespace sani::circuit {

namespace {

bool is_commutative2(GateKind kind) {
  switch (kind) {
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kXor:
    case GateKind::kXnor:
    case GateKind::kNand:
    case GateKind::kNor:
      return true;
    default:
      return false;
  }
}

/// Replays `gadget`'s netlist node by node through `edit(w, node)`, which
/// may alter the copy before it is appended.  WireIds are stable, so the
/// spec and output list transfer unchanged.
template <typename EditFn>
Gadget rebuild(const Gadget& gadget, EditFn edit) {
  const Netlist& nl = gadget.netlist;
  Netlist out(nl.name());
  for (WireId w = 0; w < nl.num_wires(); ++w) {
    GateNode node = nl.node(w);
    edit(w, node);
    out.add(node.kind, std::move(node.name), node.fanin[0], node.fanin[1],
            node.fanin[2]);
  }
  for (WireId w : nl.outputs()) out.add_output(w);
  return Gadget{std::move(out), gadget.spec};
}

}  // namespace

Gadget with_renamed_wires(const Gadget& gadget, const std::string& prefix) {
  return rebuild(gadget, [&](WireId, GateNode& node) {
    node.name = prefix + node.name;
  });
}

Gadget with_swapped_fanins(const Gadget& gadget, WireId w) {
  if (w >= gadget.netlist.num_wires())
    throw std::invalid_argument("with_swapped_fanins: no such wire");
  if (!is_commutative2(gadget.netlist.node(w).kind))
    throw std::invalid_argument(
        "with_swapped_fanins: gate is not commutative in its fan-ins");
  return rebuild(gadget, [&](WireId i, GateNode& node) {
    if (i == w) std::swap(node.fanin[0], node.fanin[1]);
  });
}

WireId first_swappable_gate(const Gadget& gadget) {
  const Netlist& nl = gadget.netlist;
  for (WireId w = 0; w < nl.num_wires(); ++w) {
    const GateNode& node = nl.node(w);
    if (is_commutative2(node.kind) && node.fanin[0] != node.fanin[1]) return w;
  }
  return kNoWire;
}

}  // namespace sani::circuit
