#pragma once
// Gadget instantiation: inlining one gadget's netlist into a builder.
//
// The composability results the paper builds on (Sec. II-A; Barthe et al.
// [3][4]) are about *circuits built from gadgets*.  This utility makes such
// circuits constructible: it replays a gadget's gates inside another
// builder, splicing caller-provided share wires into the gadget's secret
// inputs and declaring fresh randomness for the gadget's random inputs.

#include <string>
#include <vector>

#include "circuit/builder.h"
#include "circuit/spec.h"

namespace sani::circuit {

struct Instantiated {
  /// Output share wires per output group of the instantiated gadget.
  std::vector<std::vector<WireId>> outputs;
  /// The fresh random wires created for the instance.
  std::vector<WireId> randoms;
};

/// Inlines `gadget` into `builder`.
///
/// `secret_inputs[i]` supplies the share wires for the gadget's i-th secret
/// group (sizes must match).  Randoms become fresh `## random` inputs of
/// the host named "<prefix>r[k]"; publics become fresh public inputs.
/// Internal nets are replayed gate-for-gate with "<prefix>" prepended to
/// their names.  Throws std::invalid_argument on arity mismatches.
Instantiated instantiate(GadgetBuilder& builder, const Gadget& gadget,
                         const std::vector<std::vector<WireId>>& secret_inputs,
                         const std::string& prefix);

}  // namespace sani::circuit
