#include "circuit/cone_hash.h"

#include <algorithm>
#include <stdexcept>

#include "util/sha256.h"

namespace sani::circuit {

namespace {

using util::Sha256;

// Role kinds for primary inputs.  An input that carries no annotation still
// needs a distinct identity (two unclassified inputs are not interchangeable
// functions), so it is numbered by its ordinal among unclassified inputs —
// conservative: reordering such inputs dirties the digest, which is safe.
enum RoleKind : std::uint32_t {
  kRoleShare = 0,
  kRoleRandom = 1,
  kRolePublic = 2,
  kRoleUnclassified = 3,
};

struct Role {
  std::uint32_t kind = kRoleUnclassified;
  std::uint32_t a = 0;  // secret group / annotation ordinal
  std::uint32_t b = 0;  // share index
};

void put_u32(Sha256& h, std::uint32_t v) {
  const std::uint8_t le[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  h.update(le, sizeof le);
}

void put_role(Sha256& h, const Role& r) {
  put_u32(h, r.kind);
  put_u32(h, r.a);
  put_u32(h, r.b);
}

/// Role of every wire (meaningful for inputs only); unclassified inputs are
/// numbered in declaration order.
std::vector<Role> input_roles(const Gadget& gadget) {
  const Netlist& nl = gadget.netlist;
  std::vector<Role> roles(nl.num_wires());
  std::vector<bool> classified(nl.num_wires(), false);
  for (std::size_t g = 0; g < gadget.spec.secrets.size(); ++g) {
    const auto& shares = gadget.spec.secrets[g].shares;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      roles[shares[j]] = {kRoleShare, static_cast<std::uint32_t>(g),
                          static_cast<std::uint32_t>(j)};
      classified[shares[j]] = true;
    }
  }
  for (std::size_t i = 0; i < gadget.spec.randoms.size(); ++i) {
    roles[gadget.spec.randoms[i]] = {kRoleRandom,
                                     static_cast<std::uint32_t>(i), 0};
    classified[gadget.spec.randoms[i]] = true;
  }
  for (std::size_t i = 0; i < gadget.spec.publics.size(); ++i) {
    roles[gadget.spec.publics[i]] = {kRolePublic,
                                     static_cast<std::uint32_t>(i), 0};
    classified[gadget.spec.publics[i]] = true;
  }
  std::uint32_t unclassified = 0;
  for (WireId w = 0; w < nl.num_wires(); ++w) {
    if (nl.node(w).kind == GateKind::kInput && !classified[w])
      roles[w] = {kRoleUnclassified, unclassified++, 0};
  }
  return roles;
}

}  // namespace

std::string ConeDigest::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(64, '0');
  for (int i = 0; i < 32; ++i) {
    out[2 * i] = digits[bytes[i] >> 4];
    out[2 * i + 1] = digits[bytes[i] & 0xF];
  }
  return out;
}

std::vector<ConeDigest> wire_structure_digests(const Gadget& gadget) {
  const Netlist& nl = gadget.netlist;
  const std::vector<Role> roles = input_roles(gadget);
  std::vector<ConeDigest> digests(nl.num_wires());
  for (WireId w = 0; w < nl.num_wires(); ++w) {
    const GateNode& node = nl.node(w);
    Sha256 h;
    h.update("sani-wire-v1", 12);
    put_u32(h, static_cast<std::uint32_t>(node.kind));
    if (node.kind == GateKind::kInput) {
      put_role(h, roles[w]);
    } else {
      for (int i = 0; i < node.arity(); ++i)
        h.update(digests[node.fanin[i]].bytes.data(),
                 digests[node.fanin[i]].bytes.size());
    }
    h.digest(digests[w].bytes.data());
  }
  return digests;
}

ConeDigest combine_cone_digest(std::uint32_t tag, std::int32_t group,
                               std::int32_t share_index,
                               std::vector<ConeDigest> members) {
  std::sort(members.begin(), members.end());
  Sha256 h;
  h.update("sani-cone-v1", 12);
  put_u32(h, tag);
  put_u32(h, static_cast<std::uint32_t>(group));
  put_u32(h, static_cast<std::uint32_t>(share_index));
  put_u32(h, static_cast<std::uint32_t>(members.size()));
  for (const ConeDigest& m : members)
    h.update(m.bytes.data(), m.bytes.size());
  ConeDigest out;
  h.digest(out.bytes.data());
  return out;
}

ConeDigest varmap_digest(const Gadget& gadget, const VarMap& vars) {
  const std::vector<Role> roles = input_roles(gadget);
  Sha256 h;
  h.update("sani-varmap-v1", 14);
  put_u32(h, static_cast<std::uint32_t>(vars.num_vars));
  for (int v = 0; v < vars.num_vars; ++v) {
    const WireId w = vars.var_to_wire[v];
    if (w >= roles.size())
      throw std::logic_error("varmap_digest: variable bound to unknown wire");
    put_role(h, roles[w]);
  }
  ConeDigest out;
  h.digest(out.bytes.data());
  return out;
}

}  // namespace sani::circuit
