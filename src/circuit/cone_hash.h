#pragma once
// Structural hashing of probe cones (content addressing below whole-gadget
// granularity).
//
// Every wire gets a Merkle-style digest over its fan-in cone: the digest of
// a gate hashes its kind tag and the digests of its fan-ins, and the digest
// of a primary input hashes only its *security role* — (secret group, share
// index) for shares, the annotation ordinal for randoms and publics — never
// its net name.  Two wires with equal digests therefore have identical
// unfolded expression trees over role-identified inputs, hence identical
// Boolean functions; wire renaming and edits outside the cone cannot change
// the digest, while any edit inside it does.  This is the key the store's
// per-cone verdict summaries (store/serial.h) are built on: digest equality
// is what licenses replaying a cached verdict, and inequality is always
// safe — it merely forces a re-check.
//
// Digest equality is only meaningful between runs that bind roles to
// decision-diagram variables the same way, so varmap_digest() fingerprints
// the per-variable role sequence of a VarMap; summaries are invalidated
// when it changes (different --var-order, changed input declaration order
// under the declared strategy, changed share counts, ...).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/spec.h"
#include "circuit/unfold.h"

namespace sani::circuit {

/// A 32-byte SHA-256 structural digest.
struct ConeDigest {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const ConeDigest& a, const ConeDigest& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const ConeDigest& a, const ConeDigest& b) {
    return !(a == b);
  }
  friend bool operator<(const ConeDigest& a, const ConeDigest& b) {
    return a.bytes < b.bytes;
  }

  /// Lowercase hex spelling (for logs and tests).
  std::string hex() const;
};

/// Hash functor for unordered containers keyed by digest.
struct ConeDigestHash {
  std::size_t operator()(const ConeDigest& d) const {
    std::size_t h;
    static_assert(sizeof h <= sizeof d.bytes);
    __builtin_memcpy(&h, d.bytes.data(), sizeof h);
    return h;
  }
};

/// The Merkle digest of every wire's fan-in cone, in wire order (one O(W)
/// pass over the topologically-ordered netlist).
std::vector<ConeDigest> wire_structure_digests(const Gadget& gadget);

/// Folds a set of member cone digests into one observable-level digest.
/// `tag` distinguishes observable kinds, `group`/`share_index` pin an
/// output share's position (pass -1 for probes).  Members are hashed in
/// sorted order, matching the order-insensitive function-set identity the
/// observable dedupe uses.
ConeDigest combine_cone_digest(std::uint32_t tag, std::int32_t group,
                               std::int32_t share_index,
                               std::vector<ConeDigest> members);

/// Fingerprint of the role sequence a VarMap binds to dd variables: for
/// each variable in order, the role of its input wire.  Two runs with equal
/// varmap digests map every (secret group, share) / random / public role to
/// the same dd variable, so functions keyed by equal cone digests occupy
/// identical coordinates in both runs.
ConeDigest varmap_digest(const Gadget& gadget, const VarMap& vars);

}  // namespace sani::circuit
