#pragma once
// Glitch-extended probe cones (robust probing model, refs [6][7] of the
// paper; the model verified by the companion TCHES'20 work [11]).
//
// In the robust model a probe on wire w does not observe a single stable
// value: combinational glitches can expose every *stable source* driving the
// cone of w.  Stable sources are primary inputs and register outputs; a
// register output hides its own fan-in cone.  A glitch-extended probe on w
// therefore observes the tuple of all stable sources reachable backwards
// from w without crossing a register boundary.

#include <vector>

#include "circuit/netlist.h"

namespace sani::circuit {

/// For every wire, the sorted list of stable-source wires its glitch-
/// extended probe observes.  Inputs and registers observe themselves;
/// constants observe nothing.
std::vector<std::vector<WireId>> glitch_cones(const Netlist& netlist);

}  // namespace sani::circuit
