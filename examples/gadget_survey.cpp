// Survey: every registered gadget against every security notion.
//
// Produces the verdict matrix practitioners usually want first — which
// notions each masked gadget satisfies at its design order — plus structure
// statistics.  The expected highlights:
//   * ISW and the SNI refresh are d-SNI (composable anywhere),
//   * DOM and the additive refresh are d-NI but cheaper,
//   * TI is probing secure without any fresh randomness (and not NI),
//   * HPC2 is d-PINI (trivially composable with itself),
//   * the Fig. 1 composition fails under the paper's joint share counting.
//
// Run:  ./gadget_survey [--order D] [--engine mapi|...]

#include <iostream>

#include "gadgets/registry.h"
#include "util/cli.h"
#include "util/table.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"
#include "verify/uniformity.h"

using namespace sani;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  TextTable table({"gadget", "d", "inputs", "gates", "probes", "probing",
                   "NI", "SNI", "PINI", "uniform", "time (s)"});

  for (const std::string& name : gadgets::all_names()) {
    // Level >= 3 gadgets take minutes per notion; opt in with --full.
    if (!args.has("full") && gadgets::security_level(name) >= 3) continue;
    circuit::Gadget g = gadgets::by_name(name);
    const int d = args.value_int("order", gadgets::security_level(name));
    circuit::NetlistStats stats = g.netlist.stats();

    Stopwatch watch;
    std::string verdicts[4];
    std::size_t probes = 0;
    int col = 0;
    for (verify::Notion notion :
         {verify::Notion::kProbing, verify::Notion::kNI, verify::Notion::kSNI,
          verify::Notion::kPINI}) {
      verify::VerifyOptions opt;
      opt.notion = notion;
      opt.order = d;
      verify::VerifyResult r = verify::verify(g, opt);
      verdicts[col++] = r.secure ? "yes" : "no";
      probes = r.stats.num_observables;
    }

    table.row()
        .add(name)
        .add(d)
        .add(static_cast<std::uint64_t>(stats.num_inputs))
        .add(static_cast<std::uint64_t>(stats.num_gates))
        .add(static_cast<std::uint64_t>(probes))
        .add(verdicts[0])
        .add(verdicts[1])
        .add(verdicts[2])
        .add(verdicts[3])
        .add(std::string(
            g.spec.num_output_shares() <= 12
                ? (verify::check_uniformity(g).uniform ? "yes" : "no")
                : "-"))  // 2^m combinations — skip for very wide outputs
        .add(watch.seconds(), 4);
  }
  std::cout << table.to_ascii();
  std::cout << "\nAll verdicts use per-input share counting and the rigorous "
               "set-level check; see composition_example for the paper's "
               "joint-counting variant.\n";
  return 0;
}
