// Quickstart: build a masked gadget, verify it, read the report.
//
// This is the 60-second tour of the public API:
//   1. construct a gadget (here: first-order DOM multiplication, Fig. 3 of
//      the paper) — or parse one from annotated ILANG,
//   2. pick a security notion and an engine,
//   3. verify and print the verdict, the phase timers and (on failure) the
//      counterexample.
//
// Run:  ./quickstart [--gadget NAME] [--notion probing|ni|sni|pini]
//                    [--order D] [--engine lil|map|mapi|fujita]

#include <iostream>

#include "circuit/unfold.h"
#include "gadgets/registry.h"
#include "util/cli.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"

using namespace sani;

namespace {

verify::Notion parse_notion(const std::string& s) {
  if (s == "probing") return verify::Notion::kProbing;
  if (s == "ni") return verify::Notion::kNI;
  if (s == "sni") return verify::Notion::kSNI;
  if (s == "pini") return verify::Notion::kPINI;
  throw std::invalid_argument("unknown notion '" + s + "'");
}

verify::EngineKind parse_engine(const std::string& s) {
  if (s == "lil") return verify::EngineKind::kLIL;
  if (s == "map") return verify::EngineKind::kMAP;
  if (s == "mapi") return verify::EngineKind::kMAPI;
  if (s == "fujita") return verify::EngineKind::kFUJITA;
  throw std::invalid_argument("unknown engine '" + s + "'");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string name = args.value_or("gadget", "dom-1");

  // 1. Build the gadget (see gadgets::all_names() for the suite).
  circuit::Gadget gadget = gadgets::by_name(name);
  circuit::NetlistStats stats = gadget.netlist.stats();
  std::cout << "gadget " << name << ": " << stats.num_inputs << " inputs, "
            << stats.num_gates << " gates (" << stats.num_nonlinear
            << " nonlinear), depth " << stats.depth << "\n";

  // 2. Configure the verification.
  verify::VerifyOptions options;
  options.notion = parse_notion(args.value_or("notion", "sni"));
  options.order = args.value_int("order", gadgets::security_level(name));
  options.engine = parse_engine(args.value_or("engine", "mapi"));
  if (args.has("no-union")) options.union_check = false;
  options.time_limit = args.value_int("time-limit", 0);

  // 3. Verify and report.
  Stopwatch watch;
  verify::VerifyResult result = verify::verify(gadget, options);
  const double seconds = watch.seconds();

  std::cout << verify::summarize(name, options, result, seconds) << "\n\n";

  circuit::Unfolded unfolded = circuit::unfold(gadget);
  std::cout << verify::detailed_report(gadget, unfolded.vars, options, result);
  return result.timed_out ? 2 : 0;
}
