// Beyond the paper's benchmarks: a masked AES S-box under the exact
// verifier.
//
// The S-box is built from a composite-field (tower) inversion whose field
// isomorphism is *derived at construction time* (gadgets/gf_model.h), with
// every multiplication realized as a DOM-indep GF(4) multiplier.  Unlike
// the paper's gadget suite, the inversion multiplies values derived from the
// same input byte — the classic "dependent operands" situation DOM's
// security argument does not cover.  Three refresh policies are compared:
//
//   none      — raw DOM multipliers everywhere (30 random bits at order 1)
//   d-operand — SNI refresh on one operand of every multiplication by the
//               inverted norm d (42 random bits)
//   full      — additionally refresh the al * ah norm products (48 bits)
//
// The verifier (not the construction) decides what each policy buys.  On
// this tower, first-order probing security holds even without refreshes;
// the *full* policy is what makes the GF(16) inversion probe-isolating
// (PINI), i.e. safely composable into a larger S-box pipeline.
//
// Run:  ./aes_sbox_analysis            (sub-gadget matrix, fast)
//       ./aes_sbox_analysis --full     (adds the 638-probe inversion core)

#include <iostream>

#include "gadgets/aes_sbox.h"
#include "gadgets/gf_model.h"
#include "util/cli.h"
#include "util/table.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"
#include "verify/uniformity.h"

using namespace sani;

namespace {

const char* refresh_name(gadgets::SboxRefresh r) {
  switch (r) {
    case gadgets::SboxRefresh::kNone: return "none";
    case gadgets::SboxRefresh::kDOperand: return "d-operand";
    case gadgets::SboxRefresh::kFull: return "full";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  // Sanity line: the generator really produces the AES S-box.
  std::cout << "software model: S(0x00)=0x"
            << std::hex << int(gadgets::gf::aes_sbox(0x00)) << ", S(0x53)=0x"
            << int(gadgets::gf::aes_sbox(0x53)) << std::dec
            << "  (expected 0x63, 0xed; isomorphism derived at runtime)\n\n";

  std::cout << "== masked GF(16) inversion (the S-box's nonlinear heart), "
               "order 1 ==\n";
  TextTable table({"refresh", "randoms", "probes", "probing", "NI", "SNI",
                   "PINI", "uniform", "time (s)"});
  for (gadgets::SboxRefresh r :
       {gadgets::SboxRefresh::kNone, gadgets::SboxRefresh::kDOperand,
        gadgets::SboxRefresh::kFull}) {
    circuit::Gadget g = gadgets::masked_gf16_inv(1, r);
    Stopwatch watch;
    std::string verdicts[4];
    std::size_t probes = 0;
    int col = 0;
    for (verify::Notion notion :
         {verify::Notion::kProbing, verify::Notion::kNI, verify::Notion::kSNI,
          verify::Notion::kPINI}) {
      verify::VerifyOptions opt;
      opt.notion = notion;
      opt.order = 1;
      verify::VerifyResult res = verify::verify(g, opt);
      verdicts[col++] = res.secure ? "yes" : "no";
      probes = res.stats.num_observables;
    }
    table.row()
        .add(refresh_name(r))
        .add(static_cast<std::uint64_t>(g.spec.randoms.size()))
        .add(static_cast<std::uint64_t>(probes))
        .add(verdicts[0])
        .add(verdicts[1])
        .add(verdicts[2])
        .add(verdicts[3])
        .add(std::string(verify::check_uniformity(g).uniform ? "yes" : "no"))
        .add(watch.seconds(), 3);
  }
  std::cout << table.to_ascii();
  std::cout << "-> the full refresh policy is what buys PINI "
               "(composability); probing security needs none of it at "
               "order 1.\n\n";

  // Structure of the complete S-box.
  circuit::Gadget sbox = gadgets::aes_sbox(1, gadgets::SboxRefresh::kDOperand);
  circuit::NetlistStats s = sbox.netlist.stats();
  std::cout << "== full masked S-box, order 1 ==\n";
  std::cout << "inputs: " << s.num_inputs << " (8 secrets x 2 shares + "
            << sbox.spec.randoms.size() << " randoms), gates: " << s.num_gates
            << " (" << s.num_nonlinear << " nonlinear, " << s.num_registers
            << " registers), depth " << s.depth << "\n";

  if (!args.has("full")) {
    std::cout << "(run with --full to verify the 600+-probe inversion core "
                 "exactly — about a minute)\n";
    return 0;
  }

  circuit::Gadget core =
      gadgets::aes_sbox_core(1, gadgets::SboxRefresh::kDOperand);
  verify::VerifyOptions opt;
  opt.notion = verify::Notion::kProbing;
  opt.order = 1;
  opt.union_check = false;
  Stopwatch watch;
  verify::VerifyResult res = verify::verify(core, opt);
  std::cout << "\n"
            << verify::summarize("sbox inversion core", opt, res,
                                 watch.seconds())
            << "\n";
  return 0;
}
