// Regenerates the paper's Fig. 2: the compact correlation matrix of the
// composition h = g o f (Fig. 1), and the witness showing the composition is
// not 2-NI under the paper's total-share-count T-matrix.
//
//   f : additive refresh of a (3 shares, randoms rf0 rf1), probed at
//       p_f = a0 ^ rf0
//   g : ISW multiplication with b (3 shares, randoms rg*), probed at a cross
//       product that reuses rf0 through f's output share a1 ^ rf0.
//
// Rows of the matrix are the XOR-combinations (pi_f, pi_g, omega_g); columns
// are spectral coordinates, restricted (for printability, exactly like the
// figure) to rho_g = 0 and alpha_b = 0: groups are rho_f in 0..3 and
// alpha_a in 0..7.  '1' marks a nonzero Walsh coefficient, '.' zero, and any
// nonzero entry printed in the forbidden (white) region is flagged '*' — the
// witness.

#include <iostream>
#include <vector>

#include "circuit/unfold.h"
#include "gadgets/composition.h"
#include "spectral/spectrum.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"

using namespace sani;

int main() {
  gadgets::Composition comp = gadgets::composition_example();
  const circuit::Gadget& g = comp.gadget;
  circuit::Unfolded u = circuit::unfold(g);
  dd::Manager& m = *u.manager;

  // The two fixed probes of the paper's example.  p_g is the ISW cross
  // product (a1 ^ rf0) AND b0 — the product that re-exposes f's randomness.
  const std::string pg_name = "g.p[1,0]";
  verify::ObservableSet obs = verify::build_observables_with_probes(
      g, u, {comp.probe_f_name, pg_name});

  // Variable groups for the column layout.
  const Mask a_vars = u.vars.secret_vars[0];
  const Mask b_vars = u.vars.secret_vars[1];
  std::vector<int> a_bits, rf_bits, rg_bits;
  a_vars.for_each_bit([&](int v) { a_bits.push_back(v); });
  u.vars.random_vars.for_each_bit([&](int v) {
    const std::string& nm = g.netlist.node(u.vars.var_to_wire[v]).name;
    (nm.rfind("rf", 0) == 0 ? rf_bits : rg_bits).push_back(v);
  });

  const auto& outputs_first = obs.items;  // outputs o0..o2 then pf, pg
  const std::size_t num_out = obs.num_outputs;
  const verify::Observable& pf = outputs_first[num_out];
  const verify::Observable& pg = outputs_first[num_out + 1];

  std::cout << "Compact correlation matrix of h = g o f  (rho_g = 0, "
               "alpha_b = 0 slice)\n";
  std::cout << "probes: pi_f = " << pf.name << " = a0^rf0,  pi_g = "
            << pg.name << " = (a1^rf0) & b0\n\n";
  std::cout << "columns: rho_f = 0..3 (x8 alpha_a columns each), "
               "alpha_a = 0..7 within each group\n";
  std::cout << "rows: [pi_f pi_g omega_g], omega_g over the 3 output "
               "shares of g\n\n";

  // Header.
  std::cout << "              ";
  for (int rf = 0; rf < 4; ++rf) std::cout << "rho_f=" << rf << "   ";
  std::cout << "\n";

  // For the NI check at |omega| combinations: T forbids (joint counting)
  // more than |Q| total shares at rho = 0; the witness rows use Q =
  // {pi_f, pi_g}, threshold 2.
  bool witness_found = false;
  Mask witness_alpha;
  int witness_row[3] = {0, 0, 0};

  for (int pif = 0; pif <= 1; ++pif) {
    for (int pig = 0; pig <= 1; ++pig) {
      for (int wg = 0; wg < 8; ++wg) {
        // Build the XOR-combination.
        dd::Bdd fn = dd::Bdd::zero(m);
        int selected = 0;
        if (pif) {
          fn ^= pf.fns[0];
          ++selected;
        }
        if (pig) {
          fn ^= pg.fns[0];
          ++selected;
        }
        for (std::size_t j = 0; j < 3; ++j)
          if ((wg >> j) & 1) {
            fn ^= outputs_first[j].fns[0];
            ++selected;
          }
        if (selected == 0) {
          std::cout << "[0 0 0]  (empty)\n";
          continue;
        }
        spectral::Spectrum spec = spectral::Spectrum::from_bdd(fn);

        std::cout << "[" << pif << " " << pig << " " << wg << "]  ";
        for (int rf = 0; rf < 4; ++rf) {
          for (int aa = 0; aa < 8; ++aa) {
            Mask alpha;
            for (int bit = 0; bit < 2; ++bit)
              if ((rf >> bit) & 1) alpha.set(rf_bits[bit]);
            for (int bit = 0; bit < 3; ++bit)
              if ((aa >> bit) & 1) alpha.set(a_bits[bit]);
            const bool nonzero = spec.at(alpha) != 0;
            // Forbidden (white) region for the pair check: rho = 0 and more
            // total shares than the two probed values.
            const bool rho_zero = rf == 0;
            const bool forbidden =
                rho_zero && pif && pig && wg == 0 &&
                (alpha & (a_vars | b_vars)).popcount() > 2;
            char c = nonzero ? (forbidden ? '*' : '1') : '.';
            // Witness per the paper also counts the coefficient at
            // {a0,a1,b0} reachable in this row; track any starred cell or
            // the 3-share coefficient.
            if (nonzero && rho_zero && pif && pig && wg == 0) {
              Mask shares = alpha & (a_vars | b_vars);
              if (shares.popcount() >= 2 && !witness_found) {
                // alpha_b = 0 slice shows {a0,a1}; the full witness adds b0.
                witness_alpha = shares;
                witness_row[0] = pif;
                witness_row[1] = pig;
                witness_row[2] = wg;
                witness_found = true;
              }
            }
            std::cout << c;
          }
          std::cout << "  ";
        }
        std::cout << "\n";
      }
    }
  }

  std::cout << "\n";
  if (witness_found) {
    std::cout << "witness row [" << witness_row[0] << " " << witness_row[1]
              << " " << witness_row[2] << "]: nonzero coefficient at "
              << verify::decode_alpha(g, u.vars, witness_alpha)
              << " with rho = 0\n";
    std::cout << "=> two probed values correlate with multiple input shares; "
                 "with the AND product's b0 the pair reveals three shares.\n\n";
  }

  // Formal verdicts on the fixed-probe configuration.
  for (bool joint : {true, false}) {
    verify::VerifyOptions opt;
    opt.notion = verify::Notion::kNI;
    opt.order = 2;
    opt.joint_share_count = joint;
    Stopwatch watch;
    verify::VerifyResult r = verify::verify_prepared(u, obs, opt);
    std::cout << (joint ? "paper's total-share counting: "
                        : "per-input (Barthe) counting:  ")
              << verify::summarize("h = g o f", opt, r, watch.seconds())
              << "\n";
    if (!r.secure && r.counterexample)
      std::cout << "    witness: " << r.counterexample->reason << "\n";
  }
  return 0;
}
