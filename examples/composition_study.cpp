// Composability study: when does a multiplication chain stay secure?
//
// Sec. II-A of the paper recalls the composition calculus of Barthe et al.:
// d-SNI gadgets compose freely, d-NI gadgets do not, and refreshing between
// stages restores composability.  This example *measures* that calculus on
// two-stage multiplication chains  m(m(a, b), c)  built with the
// compose_serial combinator, across multiplier families and refresh
// policies, and confirms the headline theorem (SNI o SNI stays SNI) as well
// as the cost of each policy in fresh randomness.
//
// Run:  ./composition_study [--order D]

#include <iostream>

#include "gadgets/compose.h"
#include "util/cli.h"
#include "util/table.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"

using namespace sani;

namespace {

const char* policy_name(gadgets::RefreshPolicy p) {
  switch (p) {
    case gadgets::RefreshPolicy::kNone: return "none";
    case gadgets::RefreshPolicy::kSimple: return "simple (NI)";
    case gadgets::RefreshPolicy::kSni: return "SNI";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int d = args.value_int("order", 1);
  const std::string mult_base = args.value_or("mult", "");

  std::vector<std::string> mults;
  if (!mult_base.empty()) {
    mults = {mult_base};
  } else {
    for (const char* base : {"isw", "dom", "hpc2"})
      mults.push_back(std::string(base) + "-" + std::to_string(d));
  }

  TextTable table({"chain", "refresh", "randoms", "probes", "probing", "NI",
                   "SNI", "PINI", "time (s)"});
  for (const std::string& mult : mults) {
    for (gadgets::RefreshPolicy policy :
         {gadgets::RefreshPolicy::kNone, gadgets::RefreshPolicy::kSimple,
          gadgets::RefreshPolicy::kSni}) {
      circuit::Gadget chain = gadgets::mult_chain(mult, policy);
      Stopwatch watch;
      std::string verdicts[4];
      std::size_t probes = 0;
      int col = 0;
      for (verify::Notion notion :
           {verify::Notion::kProbing, verify::Notion::kNI,
            verify::Notion::kSNI, verify::Notion::kPINI}) {
        verify::VerifyOptions opt;
        opt.notion = notion;
        opt.order = d;
        verify::VerifyResult r = verify::verify(chain, opt);
        verdicts[col++] = r.secure ? "yes" : "no";
        probes = r.stats.num_observables;
      }
      table.row()
          .add(mult + " o " + mult)
          .add(policy_name(policy))
          .add(static_cast<std::uint64_t>(chain.spec.randoms.size()))
          .add(static_cast<std::uint64_t>(probes))
          .add(verdicts[0])
          .add(verdicts[1])
          .add(verdicts[2])
          .add(verdicts[3])
          .add(watch.seconds(), 4);
    }
  }
  std::cout << table.to_ascii();
  std::cout
      << "\nReading: with *independent* operands these chains verify at "
         "their design order even without refresh — the composition "
         "theorems give sufficient, not necessary, conditions, and the "
         "exact verifier shows the slack.  The refresh policies price that "
         "insurance: +"
      << d << " randoms (simple) vs +" << d * (d + 1) / 2
      << " randoms (SNI) per link at this order.  The failure mode the "
         "calculus guards against needs shared randomness across stages — "
         "see composition_example (the paper's Fig. 1/2) where probing the "
         "refresh chain and a product of the next stage correlates with "
         "three shares.\n";
  return 0;
}
