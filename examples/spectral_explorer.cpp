// Spectral explorer: everything the library can say about one wire.
//
// Picks a wire of a gadget (default: the blinded cross product of DOM-1)
// and reports its Boolean/spectral anatomy — algebraic degree via the
// Moebius transform, Walsh spectrum as an ADD, balancedness / correlation
// immunity / resiliency / nonlinearity (the Xiao-Massey toolbox behind the
// verifier's conditions) — and writes Graphviz dumps of the function BDD,
// its spectrum ADD and the SNI relation matrix T so the paper's Fig. 2
// machinery can literally be looked at.
//
// Run:  ./spectral_explorer [--gadget dom-1] [--wire NAME] [--dot DIR]

#include <fstream>
#include <iostream>

#include "circuit/unfold.h"
#include "dd/anf.h"
#include "dd/dot.h"
#include "dd/walsh.h"
#include "gadgets/registry.h"
#include "spectral/properties.h"
#include "spectral/spectrum.h"
#include "util/cli.h"
#include "verify/checker.h"
#include "verify/predicate.h"
#include "verify/report.h"

using namespace sani;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string name = args.value_or("gadget", "dom-1");
  circuit::Gadget g = gadgets::by_name(name);
  circuit::Unfolded u = circuit::unfold(g);
  dd::Manager& m = *u.manager;

  // Default wire: the first blinded resharing node if present, else the
  // first gate.
  std::string wire_name = args.value_or("wire", "");
  circuit::WireId wire = circuit::kNoWire;
  if (!wire_name.empty()) {
    wire = g.netlist.find(wire_name);
    if (wire == circuit::kNoWire) {
      std::cerr << "no wire named '" << wire_name << "'\n";
      return 1;
    }
  } else {
    for (circuit::WireId w = 0; w < g.netlist.num_wires(); ++w)
      if (g.netlist.node(w).kind == circuit::GateKind::kXor) {
        wire = w;
        break;
      }
    if (wire == circuit::kNoWire) wire = g.netlist.num_wires() - 1;
    wire_name = g.netlist.node(wire).name;
  }

  const dd::Bdd f = u.wire_fn[wire];
  std::cout << "gadget " << name << ", wire '" << wire_name << "'\n";
  std::cout << "  support:          "
            << verify::decode_alpha(g, u.vars, f.support()) << "\n";
  std::cout << "  BDD nodes:        " << f.size() << "\n";
  std::cout << "  algebraic degree: " << dd::algebraic_degree(f) << "\n";

  spectral::Spectrum s = spectral::Spectrum::from_bdd(f);
  std::cout << "  Walsh coefficients (nonzero): " << s.nonzero_count()
            << "  (Parseval " << (s.parseval_ok() ? "ok" : "VIOLATED")
            << ")\n";
  std::cout << "  balanced:         "
            << (spectral::is_balanced(s) ? "yes" : "no") << "\n";
  std::cout << "  corr. immunity:   "
            << spectral::correlation_immunity_order(s) << "\n";
  std::cout << "  resiliency:       " << spectral::resiliency_order(s) << "\n";
  std::cout << "  nonlinearity:     " << spectral::nonlinearity(s) << "\n";

  // Coefficients with rho = 0 are what the verifier examines.
  std::cout << "  rho = 0 slice:\n";
  int shown = 0;
  for (const auto& [alpha, v] : s.coefficients()) {
    if (alpha.intersects(u.vars.random_vars)) continue;
    std::cout << "    s(" << verify::decode_alpha(g, u.vars, alpha)
              << ") = " << v << "\n";
    if (++shown >= 8) {
      std::cout << "    ...\n";
      break;
    }
  }
  if (shown == 0)
    std::cout << "    (empty — every coefficient involves fresh "
                 "randomness; this wire is perfectly blinded)\n";

  // Graphviz dumps: function, spectrum, and the 1-SNI relation matrix.
  const std::string dir = args.value_or("dot", "");
  if (!dir.empty()) {
    std::vector<std::string> var_names(u.vars.num_vars);
    for (int v = 0; v < u.vars.num_vars; ++v)
      var_names[v] = g.netlist.node(u.vars.var_to_wire[v]).name;

    dd::Add spectrum_add = dd::walsh_transform(f);
    verify::PredicateBuilder preds(m, u.vars);
    dd::Bdd t_sni = preds.ni_violation(0);  // SNI with zero internal probes

    auto dump = [&](const std::string& file, const dd::Add& root,
                    const std::string& label) {
      std::ofstream os(dir + "/" + file);
      dd::write_dot(os, {root}, {label}, var_names);
      std::cout << "  wrote " << dir << "/" << file << "\n";
    };
    dump("function.dot", dd::Add::from_bdd(f), wire_name);
    dump("spectrum.dot", spectrum_add, "walsh(" + wire_name + ")");
    dump("t_sni.dot", dd::Add::from_bdd(t_sni), "T (SNI, t=0)");
  } else {
    std::cout << "(pass --dot DIR to write Graphviz dumps of the function, "
                 "its spectrum ADD and the relation matrix T)\n";
  }
  return 0;
}
