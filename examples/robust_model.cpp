// Glitch-robust probing in practice: why DOM has registers.
//
// The same DOM-1 netlist is verified twice under two probe models:
//  * standard probes observe one stable wire value;
//  * glitch-extended probes (robust model, refs [6][7] of the paper)
//    observe every stable source in the wire's combinational cone, because
//    CMOS glitches can expose intermediate transitions.
//
// With its resharing registers DOM-1 is secure in both models; remove the
// registers (a pure netlist transformation that does not change the Boolean
// function!) and the robust model finds the classic first-order glitch leak.
//
// Run:  ./robust_model

#include <iostream>

#include "circuit/unfold.h"
#include "gadgets/dom.h"
#include "gadgets/ti.h"
#include "util/table.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"

using namespace sani;

namespace {

std::string verdict(const circuit::Gadget& g, bool robust) {
  verify::VerifyOptions opt;
  opt.notion = verify::Notion::kProbing;
  opt.order = 1;
  opt.probes.glitch_robust = robust;
  verify::VerifyResult r = verify::verify(g, opt);
  return r.secure ? "secure" : "INSECURE";
}

}  // namespace

int main() {
  circuit::Gadget dom_regs = gadgets::dom_mult(1, /*with_registers=*/true);
  circuit::Gadget dom_bare = gadgets::dom_mult(1, /*with_registers=*/false);
  circuit::Gadget ti = gadgets::ti_and();

  TextTable table({"gadget", "standard probes", "glitch-extended probes"});
  table.row()
      .add("dom-1 (with registers)")
      .add(verdict(dom_regs, false))
      .add(verdict(dom_regs, true));
  table.row()
      .add("dom-1 (registers removed)")
      .add(verdict(dom_bare, false))
      .add(verdict(dom_bare, true));
  table.row().add("ti-1 (no randomness)").add(verdict(ti, false)).add(
      verdict(ti, true));
  std::cout << table.to_ascii() << "\n";

  // Show the leak explicitly.
  verify::VerifyOptions opt;
  opt.notion = verify::Notion::kProbing;
  opt.order = 1;
  opt.probes.glitch_robust = true;
  verify::VerifyResult r = verify::verify(dom_bare, opt);
  if (!r.secure && r.counterexample) {
    circuit::Unfolded u = circuit::unfold(dom_bare);
    std::cout << "glitch witness in register-free dom-1:\n"
              << verify::detailed_report(dom_bare, u.vars, opt, r);
  }
  std::cout << "\nThe registers change no Boolean function, only where "
               "glitches can propagate — exactly the distinction between "
               "the standard and robust probing models.\n";
  return 0;
}
