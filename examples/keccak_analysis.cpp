// Domain walk-through: analysing a real cryptographic round function.
//
// The chi layer is the only nonlinear step of Keccak-f (SHA-3); its DOM-
// protected implementation (Gross et al., DSD'17) is the paper's largest
// benchmark family.  This example dissects keccak-1: structure, per-notion
// verdicts, the exact-vs-heuristic trade-off, and where the verification
// time goes (the paper's Fig. 6 breakout, on one gadget).
//
// Run:  ./keccak_analysis [--order 1|2] [--engine mapi|...]

#include <iostream>

#include "gadgets/keccak.h"
#include "util/cli.h"
#include "util/table.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/heuristic.h"
#include "verify/report.h"

using namespace sani;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int order = args.value_int("order", 1);

  circuit::Gadget g = gadgets::keccak_chi(order);
  circuit::NetlistStats stats = g.netlist.stats();
  std::cout << "keccak chi, protection order " << order << ":\n";
  std::cout << "  " << stats.num_inputs << " inputs ("
            << g.spec.secrets.size() << " secrets x "
            << g.spec.shares_per_secret() << " shares, "
            << g.spec.randoms.size() << " randoms), " << stats.num_gates
            << " gates (" << stats.num_nonlinear << " nonlinear), depth "
            << stats.depth << "\n\n";

  TextTable table({"notion", "verdict", "combinations", "base (s)",
                   "convolution (s)", "verification (s)", "total (s)"});
  for (verify::Notion notion :
       {verify::Notion::kProbing, verify::Notion::kNI, verify::Notion::kSNI,
        verify::Notion::kPINI}) {
    verify::VerifyOptions opt;
    opt.notion = notion;
    opt.order = order;
    Stopwatch watch;
    verify::VerifyResult r = verify::verify(g, opt);
    double total = watch.seconds();
    table.row()
        .add(std::string(verify::notion_name(notion)))
        .add(std::string(r.secure ? "secure" : "INSECURE"))
        .add(r.stats.combinations)
        .add(r.stats.timers.get("base"), 4)
        .add(r.stats.timers.get("convolution"), 4)
        .add(r.stats.timers.get("verification"), 4)
        .add(total, 4);
  }
  std::cout << table.to_ascii() << "\n";

  // Exact vs heuristic on the same configuration (the Table III story).
  verify::VerifyOptions opt;
  opt.notion = verify::Notion::kProbing;
  opt.order = order;
  Stopwatch exact_watch;
  verify::VerifyResult exact = verify::verify(g, opt);
  double exact_s = exact_watch.seconds();
  verify::HeuristicResult heur = verify::verify_heuristic(g, opt);

  std::cout << "exact (MAPI):        "
            << (exact.secure ? "secure" : "INSECURE") << " in " << exact_s
            << " s\n";
  std::cout << "heuristic (maskVerif-style): "
            << (heur.proven_secure
                    ? "proved secure"
                    : std::to_string(heur.inconclusive) + " combinations left "
                      "inconclusive")
            << " in " << heur.seconds << " s\n";
  std::cout << "\nThe heuristic is faster but incomplete; the exact engine "
               "settles every combination — the trade-off the paper "
               "quantifies in Table III.\n";
  return 0;
}
