// The full Fig. 5 front-end flow: gadget -> annotated ILANG -> parser ->
// unfolding -> verification; also verifies a user-supplied .ilang file.
//
// Run:  ./ilang_roundtrip                      (built-in DOM-1 round trip)
//       ./ilang_roundtrip --file g.ilang       (verify an external netlist)
//       ./ilang_roundtrip --emit dom-2         (print annotated ILANG)

#include <iostream>

#include "circuit/ilang.h"
#include "gadgets/registry.h"
#include "util/cli.h"
#include "obs/clock.h"
#include "verify/engine.h"
#include "verify/report.h"

using namespace sani;

namespace {

void verify_and_print(const std::string& label, const circuit::Gadget& g,
                      int order) {
  for (verify::Notion notion :
       {verify::Notion::kProbing, verify::Notion::kNI, verify::Notion::kSNI}) {
    verify::VerifyOptions opt;
    opt.notion = notion;
    opt.order = order;
    Stopwatch watch;
    verify::VerifyResult r = verify::verify(g, opt);
    std::cout << "  " << verify::summarize(label, opt, r, watch.seconds())
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  if (auto name = args.value("emit")) {
    circuit::Gadget g = gadgets::by_name(*name);
    std::cout << circuit::write_ilang_string(g);
    return 0;
  }

  if (auto path = args.value("file")) {
    circuit::Gadget g = circuit::parse_ilang_file(*path);
    std::cout << "parsed module '" << g.netlist.name() << "' from " << *path
              << "\n";
    verify_and_print(g.netlist.name(), g, args.value_int("order", 1));
    return 0;
  }

  const std::string name = args.value_or("gadget", "dom-1");
  const int order = gadgets::security_level(name);
  circuit::Gadget original = gadgets::by_name(name);

  std::cout << "== annotated ILANG emitted for " << name << " ==\n";
  const std::string text = circuit::write_ilang_string(original);
  std::cout << text << "\n";

  std::cout << "== verdicts: generated gadget ==\n";
  verify_and_print(name, original, order);

  circuit::Gadget reparsed = circuit::parse_ilang_string(text);
  std::cout << "== verdicts: after ILANG round trip ==\n";
  verify_and_print(name + " (reparsed)", reparsed, order);

  return 0;
}
